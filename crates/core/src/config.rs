//! RAID group configuration and the paper's Table 2 parameter sets.

use crate::CoreError;
use raidsim_dists::{Exponential, LifeDistribution, Weibull3};
use raidsim_hdd::scrub::ScrubPolicy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Named constants for the paper's base-case parameters (Table 2, with
/// the values reconstructed from the prose of Sections 6.1–6.4 — the
/// table itself is garbled in the available text; see DESIGN.md §4).
pub mod params {
    /// Time-to-operational-failure location γ (hours).
    pub const TTOP_GAMMA: f64 = 0.0;
    /// Time-to-operational-failure characteristic life η (hours):
    /// "a field population of over 120,000 HDDs".
    pub const TTOP_ETA: f64 = 461_386.0;
    /// Time-to-operational-failure shape β ("slightly increasing
    /// failure rate").
    pub const TTOP_BETA: f64 = 1.12;

    /// Time-to-restore location γ (hours): "The minimum time of six
    /// hours is used for the location parameter."
    pub const TTR_GAMMA: f64 = 6.0;
    /// Time-to-restore characteristic life η (hours): "the
    /// characteristic life is 12 hours".
    pub const TTR_ETA: f64 = 12.0;
    /// Time-to-restore shape β: "The shape parameter of 2 generates a
    /// right-skewed distribution".
    pub const TTR_BETA: f64 = 2.0;

    /// Time-to-latent-defect characteristic life η (hours): the medium
    /// read-error rate (8×10⁻¹⁴ err/B) at the low read rate
    /// (1.35×10⁹ B/h) gives 1.08×10⁻⁴ defects/hour.
    pub const TTLD_ETA: f64 = 1.0 / 1.08e-4;
    /// Time-to-latent-defect shape β: "The latent defect rate is
    /// assumed to be constant with respect to time (β=1)".
    pub const TTLD_BETA: f64 = 1.0;

    /// Time-to-scrub location γ (hours): the minimum scrub-pass delay.
    pub const TTSCRUB_GAMMA: f64 = 6.0;
    /// Time-to-scrub characteristic life η (hours): the base case
    /// scrubs with a 168-hour (one week) characteristic duration.
    pub const TTSCRUB_ETA: f64 = 168.0;
    /// Time-to-scrub shape β: "In all cases the shape parameter, β, is
    /// 3, which produces a Normal shaped distribution".
    pub const TTSCRUB_BETA: f64 = 3.0;

    /// Mission length: "This research uses a mission of 87,600 hours
    /// (10 years)."
    pub const MISSION_HOURS: f64 = 87_600.0;

    /// Drives per RAID group in all the paper's studies: "All analyses
    /// have an 87,600-hour (10-year) mission and 8 HDDs in a RAID
    /// group."
    pub const GROUP_DRIVES: usize = 8;
}

/// How many simultaneous drive losses the group survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Redundancy {
    /// RAID 4/5 — one parity drive; a second concurrent failure is data
    /// loss. The paper's (N+1) configuration.
    SingleParity,
    /// RAID 6 / RAID-DP — two parity drives; data loss needs a third
    /// concurrent failure. The paper's conclusion: "It appears that,
    /// eventually, RAID 6 will be required to meet high reliability
    /// requirements."
    DoubleParity,
}

impl Redundancy {
    /// Number of concurrent *other* bad drives that turns an
    /// operational failure into data loss.
    pub fn tolerated(&self) -> usize {
        match self {
            Redundancy::SingleParity => 1,
            Redundancy::DoubleParity => 2,
        }
    }
}

/// The four transition distributions of the state model (paper
/// Figure 4).
///
/// `ttld`/`ttscrub` are optional: `ttld = None` disables latent defects
/// entirely (the Figure 6 configurations), `ttscrub = None` with
/// latent defects enabled models a system that never scrubs (the
/// "recipe for disaster" of Section 8).
#[derive(Debug, Clone)]
pub struct TransitionDistributions {
    /// Time to operational failure of a (new) drive.
    pub ttop: Arc<dyn LifeDistribution>,
    /// Time to restore (replace + reconstruct) an operationally failed
    /// drive.
    pub ttr: Arc<dyn LifeDistribution>,
    /// Time for a (clean) drive to develop a latent defect, or `None`
    /// to disable latent defects.
    pub ttld: Option<Arc<dyn LifeDistribution>>,
    /// Time from a latent defect's creation to its correction by
    /// scrubbing, or `None` for a system that never scrubs.
    pub ttscrub: Option<Arc<dyn LifeDistribution>>,
}

impl TransitionDistributions {
    /// The paper's Table 2 base case (all four distributions).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] if any constant is degenerate
    /// (cannot happen for the checked-in values).
    pub fn paper_base_case() -> Result<Self, CoreError> {
        Ok(Self {
            ttop: Arc::new(Weibull3::new(
                params::TTOP_GAMMA,
                params::TTOP_ETA,
                params::TTOP_BETA,
            )?),
            ttr: Arc::new(Weibull3::new(
                params::TTR_GAMMA,
                params::TTR_ETA,
                params::TTR_BETA,
            )?),
            ttld: Some(Arc::new(Weibull3::two_param(
                params::TTLD_ETA,
                params::TTLD_BETA,
            )?)),
            ttscrub: Some(Arc::new(Weibull3::new(
                params::TTSCRUB_GAMMA,
                params::TTSCRUB_ETA,
                params::TTSCRUB_BETA,
            )?)),
        })
    }

    /// Figure 6 variant `c-c`: constant failure and restoration rates
    /// (the MTTDL assumptions), no latent defects. Rates are matched to
    /// the base case by mean (`MTBF = η_op`, `MTTR = 12 h`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] on degenerate constants.
    pub fn constant_rates() -> Result<Self, CoreError> {
        Ok(Self {
            ttop: Arc::new(Exponential::from_mean(params::TTOP_ETA)?),
            ttr: Arc::new(Exponential::from_mean(params::TTR_ETA)?),
            ttld: None,
            ttscrub: None,
        })
    }

    /// Figure 6 variant `f(t)-c`: Weibull failures, constant
    /// restoration rate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] on degenerate constants.
    pub fn weibull_failures_constant_restore() -> Result<Self, CoreError> {
        Ok(Self {
            ttop: Arc::new(Weibull3::new(
                params::TTOP_GAMMA,
                params::TTOP_ETA,
                params::TTOP_BETA,
            )?),
            ttr: Arc::new(Exponential::from_mean(params::TTR_ETA)?),
            ttld: None,
            ttscrub: None,
        })
    }

    /// Figure 6 variant `c-r(t)`: constant failure rate, Weibull
    /// restoration with the 6-hour minimum.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] on degenerate constants.
    pub fn constant_failures_weibull_restore() -> Result<Self, CoreError> {
        Ok(Self {
            ttop: Arc::new(Exponential::from_mean(params::TTOP_ETA)?),
            ttr: Arc::new(Weibull3::new(
                params::TTR_GAMMA,
                params::TTR_ETA,
                params::TTR_BETA,
            )?),
            ttld: None,
            ttscrub: None,
        })
    }

    /// Figure 6 variant `f(t)-r(t)`: Weibull failures and restorations
    /// (the Table 2 distributions), still without latent defects.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] on degenerate constants.
    pub fn weibull_both() -> Result<Self, CoreError> {
        let mut base = Self::paper_base_case()?;
        base.ttld = None;
        base.ttscrub = None;
        Ok(base)
    }

    /// Whether latent defects are modeled.
    pub fn latent_defects_enabled(&self) -> bool {
        self.ttld.is_some()
    }
}

/// Availability of replacement drives.
///
/// The paper's state 1 assumes "a spare HDD is available" at every
/// failure. [`SparePolicy::Finite`] relaxes that: a small on-site pool
/// is consumed by restorations and replenished with a logistics delay;
/// an empty pool stalls reconstruction, stretching the window in which
/// a second failure loses data. Only the discrete-event engine models
/// spares (the timeline engine pre-generates restorations and ignores
/// this field); the `exp_spares` ablation quantifies the effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SparePolicy {
    /// A spare is always on hand (the paper's assumption).
    #[default]
    AlwaysAvailable,
    /// `pool` spares on site; each consumption triggers a reorder that
    /// arrives `replenish_hours` later.
    Finite {
        /// Initial (and steady-state target) pool size.
        pool: u32,
        /// Hours from consuming a spare to its replacement arriving.
        replenish_hours: f64,
    },
}

/// Full configuration of one simulated RAID group.
#[derive(Debug, Clone)]
pub struct RaidGroupConfig {
    /// Total drives in the group, parity included (the paper's `N+1`;
    /// base case 8).
    pub drives: usize,
    /// Parity level.
    pub redundancy: Redundancy,
    /// Mission duration, hours.
    pub mission_hours: f64,
    /// The four transition distributions.
    pub dists: TransitionDistributions,
    /// Whether replacing a drive clears its latent-defect clock (a new
    /// drive has no defects). The paper's Figure 5 procedure treats the
    /// operational and defect processes as independent renewals
    /// (`false`); `true` is the physically faithful refinement. The
    /// difference is small (defects are rarely present at replacement)
    /// and is quantified by the `engine_equivalence` ablation.
    pub defect_reset_on_replacement: bool,
    /// Replacement-drive availability (see [`SparePolicy`]).
    pub spares: SparePolicy,
}

impl RaidGroupConfig {
    /// The paper's base case: 8 drives, single parity, 10-year mission,
    /// Table 2 distributions (latent defects + 168 h scrub).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] if constants are degenerate.
    pub fn paper_base_case() -> Result<Self, CoreError> {
        Ok(Self {
            drives: params::GROUP_DRIVES,
            redundancy: Redundancy::SingleParity,
            mission_hours: params::MISSION_HOURS,
            dists: TransitionDistributions::paper_base_case()?,
            defect_reset_on_replacement: false,
            spares: SparePolicy::AlwaysAvailable,
        })
    }

    /// Base case with a different scrub policy (the Figure 9 sweep and
    /// the no-scrub "disaster" case).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Distribution`] if the policy parameters are
    /// degenerate.
    pub fn with_scrub_policy(mut self, policy: ScrubPolicy) -> Result<Self, CoreError> {
        self.dists.ttscrub = policy.distribution()?.map(Arc::from);
        Ok(self)
    }

    /// Replaces the operational-failure distribution (the Figure 10
    /// shape sweep).
    pub fn with_ttop(mut self, ttop: Arc<dyn LifeDistribution>) -> Self {
        self.dists.ttop = ttop;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the group has fewer than
    /// 2 drives, fewer drives than the redundancy level supports, or a
    /// non-positive mission.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.drives < 2 {
            return Err(CoreError::InvalidConfig {
                field: "drives",
                reason: format!("need at least 2 drives, got {}", self.drives),
            });
        }
        if self.drives <= self.redundancy.tolerated() {
            return Err(CoreError::InvalidConfig {
                field: "drives",
                reason: format!(
                    "{} drives cannot carry {} parity units",
                    self.drives,
                    self.redundancy.tolerated()
                ),
            });
        }
        if !self.mission_hours.is_finite() || self.mission_hours <= 0.0 {
            return Err(CoreError::InvalidConfig {
                field: "mission_hours",
                reason: format!("must be finite and positive, got {}", self.mission_hours),
            });
        }
        if self.dists.ttscrub.is_some() && self.dists.ttld.is_none() {
            return Err(CoreError::InvalidConfig {
                field: "dists.ttscrub",
                reason: "scrub distribution given but latent defects disabled".into(),
            });
        }
        if let SparePolicy::Finite {
            pool,
            replenish_hours,
        } = self.spares
        {
            if pool == 0 {
                return Err(CoreError::InvalidConfig {
                    field: "spares",
                    reason: "finite spare pool must start with at least one spare".into(),
                });
            }
            if !replenish_hours.is_finite() || replenish_hours <= 0.0 {
                return Err(CoreError::InvalidConfig {
                    field: "spares",
                    reason: format!(
                        "replenish_hours must be finite and positive, got {replenish_hours}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of *data* drives (`N` in the paper's `N+1`).
    pub fn data_drives(&self) -> usize {
        self.drives - self.redundancy.tolerated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_matches_table2() {
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        assert_eq!(cfg.drives, 8);
        assert_eq!(cfg.mission_hours, 87_600.0);
        assert!(cfg.dists.latent_defects_enabled());
        assert!(cfg.dists.ttscrub.is_some());
        cfg.validate().unwrap();
        // TTLd eta is ~9,259 h.
        assert!((cfg.dists.ttld.as_ref().unwrap().mean() - 9259.26).abs() < 0.1);
    }

    #[test]
    fn figure6_variants_disable_latent_defects() {
        for d in [
            TransitionDistributions::constant_rates().unwrap(),
            TransitionDistributions::weibull_failures_constant_restore().unwrap(),
            TransitionDistributions::constant_failures_weibull_restore().unwrap(),
            TransitionDistributions::weibull_both().unwrap(),
        ] {
            assert!(!d.latent_defects_enabled());
            assert!(d.ttscrub.is_none());
        }
    }

    #[test]
    fn constant_variants_have_matching_means() {
        let cc = TransitionDistributions::constant_rates().unwrap();
        assert!((cc.ttop.mean() - 461_386.0).abs() < 1e-6);
        assert!((cc.ttr.mean() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_degenerate_groups() {
        let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
        cfg.drives = 1;
        assert!(cfg.validate().is_err());
        cfg.drives = 2;
        cfg.redundancy = Redundancy::DoubleParity;
        assert!(cfg.validate().is_err());
        cfg.drives = 3;
        cfg.validate().unwrap();
        cfg.mission_hours = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_scrub_without_latent_defects() {
        let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
        cfg.dists.ttld = None;
        assert!(matches!(
            cfg.validate(),
            Err(CoreError::InvalidConfig {
                field: "dists.ttscrub",
                ..
            })
        ));
    }

    #[test]
    fn scrub_policy_swap() {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::Disabled)
            .unwrap();
        assert!(cfg.dists.ttscrub.is_none());
        assert!(cfg.dists.latent_defects_enabled());

        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(12.0))
            .unwrap();
        assert!(cfg.dists.ttscrub.unwrap().mean() < 30.0);
    }

    #[test]
    fn redundancy_tolerances() {
        assert_eq!(Redundancy::SingleParity.tolerated(), 1);
        assert_eq!(Redundancy::DoubleParity.tolerated(), 2);
        let cfg = RaidGroupConfig::paper_base_case().unwrap();
        assert_eq!(cfg.data_drives(), 7); // the paper's N = 7
    }
}
