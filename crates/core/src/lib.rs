//! Core of `raidsim`: the Elerath–Pecht NHPP latent-defect RAID
//! reliability model (DSN 2007).
//!
//! The paper replaces the classic MTTDL closed form — which assumes
//! constant failure and repair rates and ignores latent defects — with a
//! **sequential Monte Carlo simulation** of each RAID group. Every drive
//! slot carries two independent renewal processes:
//!
//! * an **operational** process alternating up (time-to-operational-
//!   failure, `TTOp`) and down (time-to-restore, `TTR`) periods, and
//! * a **latent-defect** process alternating clean (time-to-latent-
//!   defect, `TTLd`) and defective (time-to-scrub, `TTScrub`) periods.
//!
//! A double-disk failure (DDF) occurs when an operational failure strikes
//! while another drive is either down (two simultaneous operational
//! failures) or carrying an uncorrected latent defect (the reverse order
//! — defect created *during* a reconstruction — is explicitly not a DDF,
//! paper Section 4.2).
//!
//! # Layout
//!
//! * [`config`] — RAID group configuration and the paper's Table 2
//!   parameter sets.
//! * [`engine`] — two interchangeable simulation engines: a
//!   discrete-event engine and the paper's Figure 5 pairwise-timeline
//!   procedure, cross-validated against each other.
//! * [`run`] — the batch runner: thousands of independent group
//!   histories, optionally across threads, deterministically seeded.
//! * [`stats`] — bounded-memory streaming aggregation: a mergeable,
//!   exact-integer accumulator and progress observability for
//!   fleet-scale runs that cannot afford to retain every history.
//! * [`checkpoint`] — crash-safe snapshot/resume for long runs:
//!   versioned, checksummed on-disk state with bit-identical
//!   continuation.
//! * [`store`] — pluggable checkpoint I/O ([`store::SnapshotStore`]):
//!   the production fsync+rename path, an in-memory store, and a
//!   seeded deterministic fault injector ([`store::FaultStore`]) with
//!   the bounded retry policy the drivers use under hostile I/O.
//! * [`sync_model`] — the worker pool's synchronization protocol as
//!   pure transitions behind a [`sync_model::SyncOps`] seam, plus an
//!   exhaustive interleaving checker that proves the epoch handshake
//!   (no lost wakeup, no double-claim, exact-prefix watermark) in
//!   every schedule of bounded scenarios.
//! * [`mttdl`] — the closed forms the paper argues against
//!   (equations 1–3), kept as the comparison baseline.
//! * [`markov`] — a small continuous-time Markov chain transient solver;
//!   in the constant-rate limit the Monte Carlo, the Markov model and
//!   MTTDL must all agree, which the test suite verifies.
//! * [`events`] — DDF event records and per-group histories.
//!
//! # Example
//!
//! ```
//! use raidsim_core::config::RaidGroupConfig;
//! use raidsim_core::run::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's base case: 8 drives, 10-year mission, latent defects,
//! // 168-hour scrub.
//! let cfg = RaidGroupConfig::paper_base_case()?;
//! let result = Simulator::new(cfg).run(200, 42);
//! // The base case sees roughly an order of magnitude more DDFs than
//! // the MTTDL prediction of ~0.27 per 1000 groups.
//! let per_1000 = result.ddfs_per_thousand_groups();
//! assert!(per_1000 > 10.0, "got {per_1000}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod closed_form;
pub mod config;
pub mod engine;
pub mod events;
pub mod markov;
pub mod mttdl;
pub mod run;
pub mod stats;
pub mod store;
pub mod sweep;
pub mod sync_model;

mod pool;

mod error;

pub use error::CoreError;
