//! Bounded-memory streaming aggregation of group histories.
//!
//! The paper's headline numbers need 10,000+ Monte Carlo group
//! histories, and fleet-scale studies need millions. Retaining every
//! [`GroupHistory`] (as [`crate::run::SimulationResult`] does) costs
//! memory proportional to the fleet and forces full rescans to update
//! statistics. [`StreamStats`] is the alternative: a constant-size,
//! mergeable accumulator holding everything the analysis layer needs —
//! moments of the per-group DDF count, per-kind and per-counter totals,
//! total downtime, and a fixed-bin histogram of DDF times that drives
//! the MCF/ROCOF estimators in `raidsim-analysis`.
//!
//! # Determinism argument
//!
//! Every piece of accumulator state is an exact integer:
//!
//! * DDF counts per group are small integers, so their sum and sum of
//!   squares (`u64`/`u128`) are exact. The textbook *Welford/Chan*
//!   streaming recurrences exist to tame floating-point cancellation;
//!   with integer observations the raw moments are already exact, which
//!   is strictly stronger — mean and variance are derived on demand
//!   with a single rounding each.
//! * Event-time histogram bins and all event counters are `u64`.
//! * Downtime is quantized to fixed-point ticks of 2⁻³² hours
//!   (≈ 0.85 µs). Scaling an `f64` by a power of two is exact, so each
//!   group's tick count is a pure function of its `downtime_hours`,
//!   and the tick sum is an exact integer.
//! * The per-group importance weight `w = exp(log_weight)` (see
//!   [`GroupHistory::log_weight`]) is quantized **once per group** to
//!   2⁻³² ticks — the same trick as downtime — and every weighted
//!   moment (`Σw`, `Σw²`, `Σw·x`, `Σw·x²`, `Σ(w·x)²`) is then an exact
//!   integer sum of pure per-group functions. Unbiased groups have
//!   `log_weight == 0.0` exactly, so `w == 1.0` and the quantization
//!   is the exact tick count 2³²: the weighted estimators degrade to
//!   the plain ones bit for bit when no biasing is active.
//!
//! Integer addition is associative and commutative, so **any** order of
//! [`StreamStats::push`] and [`StreamStats::merge`] over the same set
//! of group histories yields bit-identical state. This is what frees
//! the batch runner to schedule group batches dynamically (see
//! [`crate::run`]) and merge per-worker accumulators in whatever order
//! the workers finish: the result provably cannot depend on thread
//! count or scheduling, which is what lets the test suite demand exact
//! equality between the streamed and stored paths at every thread
//! count and claim-batch size.
//!
//! `StreamStats` intentionally has no serde derives: its exact state
//! uses `u128` fields, which the vendored offline serde does not
//! support. Reports derived from it ([`crate::run::PrecisionReport`])
//! serialize as usual.

use crate::events::{DdfKind, GroupHistory};
use crate::run::SimulationResult;

/// Default number of fixed-width DDF-time histogram bins.
///
/// 960 = 2⁶·3·5 divides evenly into every window count the experiment
/// binaries use (8, 10, 12, 16, 20, 96, …), so windowed ROCOF
/// estimates can be formed from the histogram without re-binning, and
/// common horizons (e.g. the first year of a 10-year mission) land
/// exactly on bin edges.
pub const DEFAULT_DDF_BINS: usize = 960;

/// Fixed-point downtime resolution: ticks per hour (2³²).
const DOWNTIME_TICKS_PER_HOUR: f64 = 4_294_967_296.0;

/// Fixed-point importance-weight resolution: ticks per unit weight
/// (2³²). A weight of exactly 1 — every group of an unbiased run —
/// quantizes to exactly 2³² ticks.
const WEIGHT_TICKS_PER_UNIT: f64 = 4_294_967_296.0;

/// `WEIGHT_TICKS_PER_UNIT` as the exact integer 2³².
const WEIGHT_TICKS: u128 = 1 << 32;

/// Adds with overflow detection: a weighted accumulator that wraps
/// would silently corrupt every downstream estimate, so it aborts the
/// run instead (checkpoints preserve the work up to the last batch).
#[inline]
fn checked_acc(sum: &mut u128, add: u128, what: &str) {
    *sum = match sum.checked_add(add) {
        Some(v) => v,
        None => panic!("{what} accumulator overflowed u128"),
    };
}

/// Constant-size, mergeable aggregate of simulated group histories.
///
/// # Empty-result policy
///
/// Identical to [`SimulationResult`]: totals and counters are `0` on an
/// accumulator that has seen no groups, while per-group rates
/// ([`StreamStats::mean_ddfs`], [`StreamStats::ddfs_per_thousand_groups`],
/// [`StreamStats::mean_availability`], …) are statistically undefined
/// and panic.
///
/// # Example
///
/// ```
/// use raidsim_core::config::RaidGroupConfig;
/// use raidsim_core::run::Simulator;
/// use raidsim_core::stats::StreamStats;
///
/// # fn main() -> Result<(), raidsim_core::CoreError> {
/// let sim = Simulator::new(RaidGroupConfig::paper_base_case()?);
/// // The streamed aggregate is bit-identical to one computed from the
/// // stored histories, at any thread count.
/// let streamed = sim.run_streaming(100, 7, 4);
/// let stored = StreamStats::from_result(&sim.run(100, 7));
/// assert_eq!(streamed, stored);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq)]
pub struct StreamStats {
    mission_hours: f64,
    groups: u64,
    /// Exact Σ of per-group DDF counts.
    ddf_sum: u64,
    /// Exact Σ of squared per-group DDF counts.
    ddf_sum_sq: u128,
    kind_double_op: u64,
    kind_latent_op: u64,
    op_failures: u64,
    latent_defects: u64,
    scrubs_completed: u64,
    restores_completed: u64,
    /// Exact Σ of per-group downtime, in 2⁻³²-hour ticks.
    downtime_ticks: u128,
    /// Exact Σ of quantized group weights `W`, in 2⁻³² weight ticks
    /// (exactly `groups · 2³²` for an unbiased run).
    weight_ticks: u128,
    /// Exact Σ of squared quantized weights `W²`, in 2⁻⁶⁴ ticks.
    weight_sq_ticks: u128,
    /// Exact Σ of `W·d` (weighted DDF counts), in 2⁻³² ticks.
    wddf_ticks: u128,
    /// Exact Σ of `W·d²` (weighted squared DDF counts), in 2⁻³² ticks.
    wddf_sq_ticks: u128,
    /// Exact Σ of `(W·d)²`, in 2⁻⁶⁴ ticks — the weighted estimator's
    /// own second moment.
    wddf_prod_sq_ticks: u128,
    /// DDF counts per fixed-width time bin over `[0, mission_hours]`;
    /// bins are half-open `[k·w, (k+1)·w)` except the last, which also
    /// includes the mission endpoint.
    ddf_time_bins: Vec<u64>,
}

impl Clone for StreamStats {
    /// Cloning an accumulator copies its histogram `Vec` — cheap in
    /// isolation but a smell on the driver hot path, where state should
    /// move. The manual impl (instead of `derive`) routes every clone
    /// through [`clone_audit`] so debug builds can assert the driver
    /// loop performs none.
    fn clone(&self) -> Self {
        clone_audit::record();
        Self {
            mission_hours: self.mission_hours,
            groups: self.groups,
            ddf_sum: self.ddf_sum,
            ddf_sum_sq: self.ddf_sum_sq,
            kind_double_op: self.kind_double_op,
            kind_latent_op: self.kind_latent_op,
            op_failures: self.op_failures,
            latent_defects: self.latent_defects,
            scrubs_completed: self.scrubs_completed,
            restores_completed: self.restores_completed,
            downtime_ticks: self.downtime_ticks,
            weight_ticks: self.weight_ticks,
            weight_sq_ticks: self.weight_sq_ticks,
            wddf_ticks: self.wddf_ticks,
            wddf_sq_ticks: self.wddf_sq_ticks,
            wddf_prod_sq_ticks: self.wddf_prod_sq_ticks,
            ddf_time_bins: self.ddf_time_bins.clone(),
        }
    }
}

/// Debug-build audit trail of [`StreamStats`] clones.
///
/// The counter is thread-local: the precision driver snapshots it on
/// entry and asserts it unchanged on exit, proving report assembly and
/// checkpoint writes on the coordinator thread move moment state
/// instead of copying it. Worker threads have their own counters, so
/// legitimate clones elsewhere never trip the assertion. Compiled to
/// nothing in release builds.
pub(crate) mod clone_audit {
    #[cfg(debug_assertions)]
    thread_local! {
        static CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Number of [`super::StreamStats`] clones this thread has made.
    /// Only compiled in debug builds, where the driver assertion that
    /// reads it exists.
    #[cfg(debug_assertions)]
    pub(crate) fn count() -> u64 {
        CLONES.with(|c| c.get())
    }

    /// Records one clone.
    pub(crate) fn record() {
        #[cfg(debug_assertions)]
        CLONES.with(|c| c.set(c.get() + 1));
    }
}

/// Load-balance diagnostics from one dynamically scheduled run
/// ([`crate::run::Simulator::run_streaming_instrumented`]).
///
/// Unlike [`StreamStats`], this is **not** deterministic: which worker
/// claims which batch depends on thread timing. It answers one question
/// — how evenly did the scheduler spread the work — and feeds the
/// `cargo xtask bench` harness's scheduler-efficiency columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Groups completed by each worker, one entry per worker (a single
    /// entry when the run took the serial path).
    pub worker_groups: Vec<u64>,
    /// OS threads spawned for the run: the worker-pool size for a
    /// parallel run (the pool is spawned once and reused across every
    /// driver batch), `0` for the serial path.
    pub thread_spawns: u64,
    /// Workers that died mid-run (panicked) and whose unclaimed work
    /// was resubmitted to the survivors. Always `0` on a healthy run;
    /// a lost worker's `worker_groups` entry is `0`.
    pub workers_lost: u64,
    /// Fused-sweep runs only: cross-scenario steals — the number of
    /// (worker, scenario) pairs where a worker that had already drained
    /// an earlier scenario claimed work from a later one instead of
    /// idling at a quiesce barrier. `0` for single-scenario runs. Like
    /// `worker_groups`, timing-dependent: a diagnostic, never part of
    /// the deterministic aggregates.
    pub steals: u64,
    /// Engine work counters merged across all workers (see
    /// [`crate::engine::EngineCounters`] for field semantics and which
    /// fields are deterministic).
    pub counters: crate::engine::EngineCounters,
}

impl SchedulerStats {
    /// Total groups completed across all workers.
    pub fn total(&self) -> u64 {
        self.worker_groups.iter().sum()
    }

    /// Groups completed by the busiest worker (`0` if no workers ran).
    pub fn max_worker_groups(&self) -> u64 {
        self.worker_groups.iter().copied().max().unwrap_or(0)
    }

    /// Groups completed by the least-busy worker (`0` if no workers
    /// ran).
    pub fn min_worker_groups(&self) -> u64 {
        self.worker_groups.iter().copied().min().unwrap_or(0)
    }

    /// Load-balance ratio `min / max` in `[0, 1]`: `1.0` is a perfectly
    /// even split, values near `0` mean some worker starved.
    ///
    /// # Panics
    ///
    /// Panics if no workers ran (balance of nothing is undefined).
    pub fn balance(&self) -> f64 {
        assert!(
            !self.worker_groups.is_empty(),
            "no workers ran (load balance is undefined)"
        );
        let max = self.max_worker_groups();
        if max == 0 {
            return 1.0;
        }
        self.min_worker_groups() as f64 / max as f64
    }
}

impl StreamStats {
    /// Creates an empty accumulator for a mission of the given length,
    /// with [`DEFAULT_DDF_BINS`] histogram bins.
    ///
    /// # Panics
    ///
    /// Panics if `mission_hours` is not finite and positive.
    pub fn new(mission_hours: f64) -> Self {
        Self::with_bins(mission_hours, DEFAULT_DDF_BINS)
    }

    /// Creates an empty accumulator with a custom histogram bin count.
    ///
    /// # Panics
    ///
    /// Panics if `mission_hours` is not finite and positive or
    /// `bins == 0`.
    pub fn with_bins(mission_hours: f64, bins: usize) -> Self {
        assert!(
            mission_hours.is_finite() && mission_hours > 0.0,
            "mission length must be finite and positive"
        );
        assert!(bins > 0, "need at least one histogram bin");
        Self {
            mission_hours,
            groups: 0,
            ddf_sum: 0,
            ddf_sum_sq: 0,
            kind_double_op: 0,
            kind_latent_op: 0,
            op_failures: 0,
            latent_defects: 0,
            scrubs_completed: 0,
            restores_completed: 0,
            downtime_ticks: 0,
            weight_ticks: 0,
            weight_sq_ticks: 0,
            wddf_ticks: 0,
            wddf_sq_ticks: 0,
            wddf_prod_sq_ticks: 0,
            ddf_time_bins: vec![0; bins],
        }
    }

    /// Accumulates one stored result (the bridge between the two
    /// paths; used by the equivalence tests and for re-aggregating
    /// small runs).
    pub fn from_result(result: &SimulationResult) -> Self {
        let mut stats = Self::new(result.mission_hours);
        for h in &result.histories {
            stats.push(h);
        }
        stats
    }

    /// Folds one group history into the aggregate.
    pub fn push(&mut self, h: &GroupHistory) {
        self.groups += 1;
        let d = h.ddf_count() as u64;
        self.ddf_sum += d;
        self.ddf_sum_sq += u128::from(d) * u128::from(d);
        // Quantize the group's importance weight once (module docs);
        // every weighted sum then accumulates an exact integer, and
        // unit weights quantize to exactly 2³² ticks.
        assert!(
            h.log_weight.is_finite(),
            "group log-weight must be finite, got {}",
            h.log_weight
        );
        let w_units = h.log_weight.exp() * WEIGHT_TICKS_PER_UNIT;
        assert!(
            w_units < u64::MAX as f64,
            "group weight exp({}) overflows the 2⁻³² fixed-point range",
            h.log_weight
        );
        let w = u128::from(w_units.round() as u64);
        checked_acc(&mut self.weight_ticks, w, "weight");
        checked_acc(&mut self.weight_sq_ticks, w * w, "squared-weight");
        let wd = w * u128::from(d);
        checked_acc(&mut self.wddf_ticks, wd, "weighted-DDF");
        let wd_sq = match w.checked_mul(u128::from(d) * u128::from(d)) {
            Some(v) => v,
            None => panic!("weighted squared-DDF term overflowed u128"),
        };
        checked_acc(&mut self.wddf_sq_ticks, wd_sq, "weighted squared-DDF");
        let wd_prod_sq = match wd.checked_mul(wd) {
            Some(v) => v,
            None => panic!("squared weighted-DDF term overflowed u128"),
        };
        checked_acc(
            &mut self.wddf_prod_sq_ticks,
            wd_prod_sq,
            "squared weighted-DDF",
        );
        let bins = self.ddf_time_bins.len();
        for e in &h.ddfs {
            debug_assert!(
                e.time.is_finite() && e.time >= 0.0 && e.time <= self.mission_hours,
                "DDF time outside mission window"
            );
            match e.kind {
                DdfKind::DoubleOperational => self.kind_double_op += 1,
                DdfKind::LatentThenOperational => self.kind_latent_op += 1,
            }
            let bin = ((e.time / self.mission_hours * bins as f64) as usize).min(bins - 1);
            self.ddf_time_bins[bin] += 1;
        }
        self.op_failures += h.op_failures;
        self.latent_defects += h.latent_defects;
        self.scrubs_completed += h.scrubs_completed;
        self.restores_completed += h.restores_completed;
        debug_assert!(
            h.downtime_hours.is_finite() && h.downtime_hours >= 0.0,
            "downtime must be finite and non-negative"
        );
        self.downtime_ticks += (h.downtime_hours * DOWNTIME_TICKS_PER_HOUR).round() as u128;
    }

    /// Merges another accumulator into this one.
    ///
    /// Exact in every field, so merge order cannot affect the result
    /// (see the module-level determinism argument).
    ///
    /// # Panics
    ///
    /// Panics if mission lengths or histogram bin counts differ.
    pub fn merge(&mut self, other: StreamStats) {
        assert_eq!(
            self.mission_hours, other.mission_hours,
            "cannot merge stats with different missions"
        );
        assert_eq!(
            self.ddf_time_bins.len(),
            other.ddf_time_bins.len(),
            "cannot merge stats with different histogram resolutions"
        );
        self.groups += other.groups;
        self.ddf_sum += other.ddf_sum;
        self.ddf_sum_sq += other.ddf_sum_sq;
        self.kind_double_op += other.kind_double_op;
        self.kind_latent_op += other.kind_latent_op;
        self.op_failures += other.op_failures;
        self.latent_defects += other.latent_defects;
        self.scrubs_completed += other.scrubs_completed;
        self.restores_completed += other.restores_completed;
        self.downtime_ticks += other.downtime_ticks;
        checked_acc(&mut self.weight_ticks, other.weight_ticks, "weight");
        checked_acc(
            &mut self.weight_sq_ticks,
            other.weight_sq_ticks,
            "squared-weight",
        );
        checked_acc(&mut self.wddf_ticks, other.wddf_ticks, "weighted-DDF");
        checked_acc(
            &mut self.wddf_sq_ticks,
            other.wddf_sq_ticks,
            "weighted squared-DDF",
        );
        checked_acc(
            &mut self.wddf_prod_sq_ticks,
            other.wddf_prod_sq_ticks,
            "squared weighted-DDF",
        );
        for (mine, theirs) in self.ddf_time_bins.iter_mut().zip(&other.ddf_time_bins) {
            *mine += theirs;
        }
    }

    /// Groups aggregated so far.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// `true` when no groups have been aggregated.
    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }

    /// Mission length, hours.
    pub fn mission_hours(&self) -> f64 {
        self.mission_hours
    }

    /// Total DDFs over the full mission.
    pub fn total_ddfs(&self) -> u64 {
        self.ddf_sum
    }

    /// DDF counts by kind: `(double-operational, latent-then-operational)`.
    pub fn kind_counts(&self) -> (u64, u64) {
        (self.kind_double_op, self.kind_latent_op)
    }

    /// Total operational failures across groups.
    pub fn total_op_failures(&self) -> u64 {
        self.op_failures
    }

    /// Total latent defects created across groups.
    pub fn total_latent_defects(&self) -> u64 {
        self.latent_defects
    }

    /// Total scrub corrections across groups.
    pub fn total_scrubs_completed(&self) -> u64 {
        self.scrubs_completed
    }

    /// Total drive restorations across groups.
    pub fn total_restores_completed(&self) -> u64 {
        self.restores_completed
    }

    /// Total drive-hours spent down across all groups (quantized to
    /// 2⁻³²-hour ticks; see the module docs).
    pub fn downtime_hours(&self) -> f64 {
        self.downtime_ticks as f64 / DOWNTIME_TICKS_PER_HOUR
    }

    /// Mean DDFs per group.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator (see the empty-result policy).
    pub fn mean_ddfs(&self) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        self.ddf_sum as f64 / self.groups as f64
    }

    /// Unbiased sample variance of per-group DDF counts, computed from
    /// the exact integer moments: `(n·Σx² − (Σx)²) / (n·(n−1))`.
    ///
    /// The numerator is evaluated in `u128`, so — unlike the float
    /// sum-of-squares shortcut — it cannot suffer catastrophic
    /// cancellation.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two groups.
    pub fn variance_ddfs(&self) -> f64 {
        assert!(self.groups >= 2, "variance needs at least two groups");
        let n = u128::from(self.groups);
        let s = u128::from(self.ddf_sum);
        // Cauchy–Schwarz guarantees n·Σx² ≥ (Σx)², so the exact path
        // cannot underflow — but `n·Σx²` itself can exceed `u128` at
        // extreme scale (order 2⁶⁴ groups with order-2³² DDF counts).
        // Fall back to floats there: the subtraction then loses at most
        // the usual ~2⁻⁵³ relative precision, negligible against
        // sampling error at such counts, instead of aborting the run.
        let num = match n.checked_mul(self.ddf_sum_sq) {
            Some(ns) => (ns - s * s) as f64,
            None => {
                self.groups as f64 * self.ddf_sum_sq as f64
                    - self.ddf_sum as f64 * self.ddf_sum as f64
            }
        };
        num.max(0.0) / (self.groups as f64 * (self.groups - 1) as f64)
    }

    /// Normal-approximation confidence half-width of the mean DDFs per
    /// group, for a two-sided z-score `z`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two groups.
    pub fn half_width(&self, z: f64) -> f64 {
        z * (self.variance_ddfs() / self.groups as f64).sqrt()
    }

    /// Total importance weight `Σw` across groups (quantized to 2⁻³²
    /// ticks; exactly `groups` for an unbiased run).
    pub fn weight_sum(&self) -> f64 {
        self.weight_ticks as f64 / WEIGHT_TICKS_PER_UNIT
    }

    /// Effective sample size `(Σw)² / Σw²` of the weighted sample, in
    /// groups. Cauchy–Schwarz bounds it by `groups`, with equality
    /// exactly when every weight is equal — in particular for unbiased
    /// runs — and it shrinks as the weights disperse.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator.
    pub fn effective_sample_size(&self) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        if self.weight_ticks == 0 {
            return 0.0;
        }
        // Both numerator and denominator are in 2⁻⁶⁴ tick units, so
        // the scales cancel exactly.
        let s = self.weight_ticks as f64;
        s * s / self.weight_sq_ticks as f64
    }

    /// Unnormalized importance-sampling estimate of the mean DDFs per
    /// group under the **original** measure: `Σ(wᵢ·dᵢ) / n`.
    ///
    /// Dividing by `n` (not `Σw`) keeps the estimator unbiased:
    /// `E_g[w·D] = E_f[D]` holds exactly for any tilt (DESIGN.md §16).
    /// For an unbiased run every `wᵢ` is exactly 1 and this reproduces
    /// [`StreamStats::mean_ddfs`] bit for bit (the tick scale is a
    /// power of two, so removing it commutes with `f64` rounding).
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator.
    pub fn weighted_mean_ddfs(&self) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        (self.wddf_ticks as f64 / WEIGHT_TICKS_PER_UNIT) / self.groups as f64
    }

    /// Unnormalized importance-sampling estimate of the mean **squared**
    /// DDF count under the original measure: `Σ(wᵢ·dᵢ²) / n`
    /// (`E_g[w·D²] = E_f[D²]`). Combined with
    /// [`StreamStats::weighted_mean_ddfs`] this yields a consistent
    /// estimate of the plain-measure per-group variance even when a
    /// plain run of the same size would record no events at all.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator.
    pub fn weighted_mean_square_ddfs(&self) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        (self.wddf_sq_ticks as f64 / WEIGHT_TICKS_PER_UNIT) / self.groups as f64
    }

    /// Unbiased sample variance of the weighted observations
    /// `yᵢ = wᵢ·dᵢ` — the Monte-Carlo variance of the weighted
    /// estimator's own terms: `(n·Σy² − (Σy)²) / (n·(n−1))`.
    ///
    /// Same structure and overflow policy as
    /// [`StreamStats::variance_ddfs`]: exact `u128` numerator when it
    /// fits, documented float fallback otherwise.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two groups.
    pub fn weighted_variance_ddfs(&self) -> f64 {
        assert!(self.groups >= 2, "variance needs at least two groups");
        let n = u128::from(self.groups);
        // Numerator in 2⁻⁶⁴ tick units; integer Cauchy–Schwarz
        // guarantees the exact path cannot underflow.
        let num = match (
            n.checked_mul(self.wddf_prod_sq_ticks),
            self.wddf_ticks.checked_mul(self.wddf_ticks),
        ) {
            (Some(nq), Some(ss)) => (nq - ss) as f64,
            _ => {
                self.groups as f64 * self.wddf_prod_sq_ticks as f64
                    - self.wddf_ticks as f64 * self.wddf_ticks as f64
            }
        };
        let ticks_sq = WEIGHT_TICKS_PER_UNIT * WEIGHT_TICKS_PER_UNIT;
        (num / ticks_sq).max(0.0) / (self.groups as f64 * (self.groups - 1) as f64)
    }

    /// Normal-approximation confidence half-width of
    /// [`StreamStats::weighted_mean_ddfs`], for a two-sided z-score
    /// `z`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two groups.
    pub fn weighted_half_width(&self, z: f64) -> f64 {
        z * (self.weighted_variance_ddfs() / self.groups as f64).sqrt()
    }

    /// DDFs per 1,000 groups over the full mission.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator.
    pub fn ddfs_per_thousand_groups(&self) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        1_000.0 * self.ddf_sum as f64 / self.groups as f64
    }

    /// DDFs occurring before `t` hours, from the histogram.
    ///
    /// `t` must lie on a histogram bin edge (or equal the mission
    /// length): the histogram cannot resolve sub-bin horizons, and
    /// silently flooring would misreport. Bins are half-open, so an
    /// event at exactly `t` is *not* counted — for continuously
    /// distributed event times the difference has probability zero.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not aligned with a bin edge (within 10⁻⁹ of
    /// one bin width) or is outside `[0, mission_hours]`.
    pub fn ddfs_through(&self, t: f64) -> u64 {
        assert!(
            (0.0..=self.mission_hours).contains(&t),
            "horizon {t} outside the mission window"
        );
        if t == self.mission_hours {
            return self.ddf_sum;
        }
        let bins = self.ddf_time_bins.len() as f64;
        let pos = t / self.mission_hours * bins;
        let edge = pos.round();
        // `pos` is measured in bin widths, so a fixed 1e-9 here is a
        // tolerance *relative to one bin* — it does not loosen as the
        // bin count grows the way the former `1e-9 * bins` bound did
        // (at 10⁶ bins that accepted horizons a tenth of a bin off).
        assert!(
            (pos - edge).abs() <= 1e-9,
            "horizon {t} does not align with a histogram bin edge \
             (bin width {})",
            self.bin_width()
        );
        self.ddf_time_bins[..edge as usize].iter().sum()
    }

    /// DDFs per 1,000 groups before `t` hours (same alignment rules as
    /// [`StreamStats::ddfs_through`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator or a misaligned horizon.
    pub fn per_thousand_through(&self, t: f64) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        1_000.0 * self.ddfs_through(t) as f64 / self.groups as f64
    }

    /// The DDF-time histogram: counts per fixed-width bin over
    /// `[0, mission_hours]`, pooled across all groups.
    pub fn ddf_time_histogram(&self) -> &[u64] {
        &self.ddf_time_bins
    }

    /// Width of one histogram bin, hours.
    pub fn bin_width(&self) -> f64 {
        self.mission_hours / self.ddf_time_bins.len() as f64
    }

    /// Fleet-average drive availability: up drive-hours over total
    /// drive-hours.
    ///
    /// # Panics
    ///
    /// Panics on an empty accumulator or `drives == 0`.
    pub fn mean_availability(&self, drives: usize) -> f64 {
        assert!(self.groups > 0, "no groups aggregated");
        assert!(drives > 0, "need at least one drive");
        1.0 - self.downtime_hours() / (self.groups as f64 * drives as f64 * self.mission_hours)
    }

    /// Appends the little-endian binary encoding of the accumulator to
    /// `out` (the checkpoint codec — see [`crate::checkpoint`]).
    ///
    /// The encoding is a pure function of the accumulator state:
    /// `mission_hours` as IEEE-754 bits, every integer field verbatim,
    /// and the histogram as a length-prefixed array. Because the state
    /// itself is bit-identical across thread counts and merge orders
    /// (the module-level determinism argument), so is the encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.mission_hours.to_bits().to_le_bytes());
        out.extend_from_slice(&self.groups.to_le_bytes());
        out.extend_from_slice(&self.ddf_sum.to_le_bytes());
        out.extend_from_slice(&self.ddf_sum_sq.to_le_bytes());
        out.extend_from_slice(&self.kind_double_op.to_le_bytes());
        out.extend_from_slice(&self.kind_latent_op.to_le_bytes());
        out.extend_from_slice(&self.op_failures.to_le_bytes());
        out.extend_from_slice(&self.latent_defects.to_le_bytes());
        out.extend_from_slice(&self.scrubs_completed.to_le_bytes());
        out.extend_from_slice(&self.restores_completed.to_le_bytes());
        out.extend_from_slice(&self.downtime_ticks.to_le_bytes());
        out.extend_from_slice(&self.weight_ticks.to_le_bytes());
        out.extend_from_slice(&self.weight_sq_ticks.to_le_bytes());
        out.extend_from_slice(&self.wddf_ticks.to_le_bytes());
        out.extend_from_slice(&self.wddf_sq_ticks.to_le_bytes());
        out.extend_from_slice(&self.wddf_prod_sq_ticks.to_le_bytes());
        out.extend_from_slice(&(self.ddf_time_bins.len() as u64).to_le_bytes());
        for bin in &self.ddf_time_bins {
            out.extend_from_slice(&bin.to_le_bytes());
        }
    }

    /// Decodes an accumulator previously written by
    /// [`StreamStats::encode_into`], validating every structural
    /// invariant the accessors rely on — a corrupt or truncated byte
    /// stream yields an error, never a panic and never an accumulator
    /// that would later violate an internal assertion.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the bytes are truncated,
    /// leave trailing garbage, or describe an impossible state
    /// (non-finite mission, zero histogram bins, kind counts or
    /// histogram totals inconsistent with the DDF sum, mean square
    /// below the squared mean).
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        Self::decode_version(bytes, crate::checkpoint::FORMAT_VERSION)
    }

    /// Decodes the layout a given checkpoint format version wrote (see
    /// [`crate::checkpoint::FORMAT_VERSION`]).
    ///
    /// Version 1 predates importance weighting: every group had weight
    /// exactly 1, whose 2⁻³² quantization is exactly 2³² ticks, so the
    /// weighted sums are pure integer functions of the plain ones and
    /// are reconstructed here **exactly** as a version-1 run would have
    /// accumulated them — resuming an old checkpoint stays bit-identical
    /// to a run that never stopped.
    ///
    /// # Errors
    ///
    /// As [`StreamStats::decode`], plus unknown versions and version-1
    /// moments too large for the exact weighted reconstruction.
    pub fn decode_version(bytes: &[u8], version: u32) -> Result<Self, String> {
        let mut r = Decoder { bytes, pos: 0 };
        let mission_hours = f64::from_bits(r.u64()?);
        if !mission_hours.is_finite() || mission_hours <= 0.0 {
            return Err(format!("mission length {mission_hours} is not positive"));
        }
        let groups = r.u64()?;
        let ddf_sum = r.u64()?;
        let ddf_sum_sq = r.u128()?;
        let kind_double_op = r.u64()?;
        let kind_latent_op = r.u64()?;
        let op_failures = r.u64()?;
        let latent_defects = r.u64()?;
        let scrubs_completed = r.u64()?;
        let restores_completed = r.u64()?;
        let downtime_ticks = r.u128()?;
        let (weight_ticks, weight_sq_ticks, wddf_ticks, wddf_sq_ticks, wddf_prod_sq_ticks) =
            match version {
                2 => (r.u128()?, r.u128()?, r.u128()?, r.u128()?, r.u128()?),
                1 => {
                    let upgrade = |x: u128, ticks: u128| {
                        x.checked_mul(ticks).ok_or_else(|| {
                            "version-1 squared moment too large to upgrade".to_string()
                        })
                    };
                    (
                        u128::from(groups) << 32,
                        u128::from(groups) << 64,
                        u128::from(ddf_sum) << 32,
                        upgrade(ddf_sum_sq, WEIGHT_TICKS)?,
                        upgrade(ddf_sum_sq, WEIGHT_TICKS * WEIGHT_TICKS)?,
                    )
                }
                other => {
                    return Err(format!("unsupported statistics format version {other}"));
                }
            };
        let bin_count = r.u64()?;
        if bin_count == 0 {
            return Err("histogram has zero bins".into());
        }
        if bin_count > (bytes.len() / 8) as u64 {
            // A plausibility bound before allocating: each bin needs 8
            // bytes that must already be present in the input.
            return Err(format!("histogram bin count {bin_count} exceeds payload"));
        }
        let mut ddf_time_bins = Vec::with_capacity(bin_count as usize);
        for _ in 0..bin_count {
            ddf_time_bins.push(r.u64()?);
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing byte(s) after statistics state",
                bytes.len() - r.pos
            ));
        }
        // Cross-field invariants: each DDF is counted once in the kind
        // totals and once in the histogram, and Cauchy–Schwarz bounds
        // the moments. `variance_ddfs` and `ddfs_through` rely on these.
        if kind_double_op.checked_add(kind_latent_op) != Some(ddf_sum) {
            return Err("kind counts do not sum to the DDF total".into());
        }
        let hist_total = ddf_time_bins
            .iter()
            .try_fold(0u64, |acc, &b| acc.checked_add(b));
        if hist_total != Some(ddf_sum) {
            return Err("histogram total does not match the DDF total".into());
        }
        if groups == 0 && ddf_sum != 0 {
            return Err("DDFs recorded without any groups".into());
        }
        if ddf_sum_sq < u128::from(ddf_sum) {
            // Σx² ≥ Σx for non-negative integer observations.
            return Err("squared-moment field is below the DDF total".into());
        }
        // The Cauchy–Schwarz checks skip (accept) when their products
        // overflow `u128` — they are plausibility screens, and the
        // accessors handle such extreme states via their float
        // fallbacks.
        if let Some(ns) = u128::from(groups).checked_mul(ddf_sum_sq) {
            if ns < u128::from(ddf_sum) * u128::from(ddf_sum) {
                return Err("moment fields violate the Cauchy-Schwarz bound".into());
            }
        }
        if weight_ticks == 0
            && (weight_sq_ticks != 0
                || wddf_ticks != 0
                || wddf_sq_ticks != 0
                || wddf_prod_sq_ticks != 0)
        {
            return Err("weighted moments recorded without any weight".into());
        }
        if groups == 0 && weight_ticks != 0 {
            return Err("weight recorded without any groups".into());
        }
        if let (Some(nq), Some(ss)) = (
            u128::from(groups).checked_mul(weight_sq_ticks),
            weight_ticks.checked_mul(weight_ticks),
        ) {
            if nq < ss {
                return Err("weight moments violate the Cauchy-Schwarz bound".into());
            }
        }
        if let (Some(nq), Some(ss)) = (
            u128::from(groups).checked_mul(wddf_prod_sq_ticks),
            wddf_ticks.checked_mul(wddf_ticks),
        ) {
            if nq < ss {
                return Err("weighted-DDF moments violate the Cauchy-Schwarz bound".into());
            }
        }
        Ok(Self {
            mission_hours,
            groups,
            ddf_sum,
            ddf_sum_sq,
            kind_double_op,
            kind_latent_op,
            op_failures,
            latent_defects,
            scrubs_completed,
            restores_completed,
            downtime_ticks,
            weight_ticks,
            weight_sq_ticks,
            wddf_ticks,
            wddf_sq_ticks,
            wddf_prod_sq_ticks,
            ddf_time_bins,
        })
    }
}

/// Bounds-checked little-endian reader shared by [`StreamStats::decode`]
/// and the checkpoint codec ([`crate::checkpoint`]).
pub(crate) struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts reading `bytes` from the beginning.
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads the next `N` bytes, or errors on truncation.
    pub(crate) fn take<const N: usize>(&mut self) -> Result<[u8; N], String> {
        match self.bytes.get(self.pos..self.pos + N) {
            Some(slice) => {
                self.pos += N;
                let mut buf = [0u8; N];
                buf.copy_from_slice(slice);
                Ok(buf)
            }
            None => Err(format!(
                "truncated at byte {} (needed {N} more)",
                self.pos.min(self.bytes.len())
            )),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        self.take().map(|[b]| b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        self.take().map(u32::from_le_bytes)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        self.take().map(u64::from_le_bytes)
    }

    pub(crate) fn u128(&mut self) -> Result<u128, String> {
        self.take().map(u128::from_le_bytes)
    }

    /// The bytes not yet consumed.
    pub(crate) fn remaining(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::DdfEvent;

    fn history(ddf_times: &[f64], downtime: f64) -> GroupHistory {
        GroupHistory {
            ddfs: ddf_times
                .iter()
                .map(|&time| DdfEvent {
                    time,
                    kind: if time < 500.0 {
                        DdfKind::LatentThenOperational
                    } else {
                        DdfKind::DoubleOperational
                    },
                })
                .collect(),
            op_failures: ddf_times.len() as u64 + 1,
            latent_defects: 3,
            scrubs_completed: 2,
            restores_completed: 1,
            downtime_hours: downtime,
            log_weight: 0.0,
        }
    }

    fn weighted(ddf_times: &[f64], log_weight: f64) -> GroupHistory {
        GroupHistory {
            log_weight,
            ..history(ddf_times, 0.0)
        }
    }

    #[test]
    fn push_accumulates_all_counters() {
        let mut s = StreamStats::new(1_000.0);
        s.push(&history(&[100.0, 600.0], 4.0));
        s.push(&history(&[], 0.0));
        assert_eq!(s.groups(), 2);
        assert_eq!(s.total_ddfs(), 2);
        assert_eq!(s.kind_counts(), (1, 1));
        assert_eq!(s.total_op_failures(), 4);
        assert_eq!(s.total_latent_defects(), 6);
        assert_eq!(s.total_scrubs_completed(), 4);
        assert_eq!(s.total_restores_completed(), 2);
        assert!((s.downtime_hours() - 4.0).abs() < 1e-9);
        assert_eq!(s.ddf_time_histogram().iter().sum::<u64>(), 2);
    }

    #[test]
    fn moments_match_direct_formulas() {
        let mut s = StreamStats::new(1_000.0);
        for times in [&[100.0, 600.0][..], &[][..], &[700.0][..], &[][..]] {
            s.push(&history(times, 0.0));
        }
        // Counts 2, 0, 1, 0: mean 0.75, sample variance 0.9166….
        assert!((s.mean_ddfs() - 0.75).abs() < 1e-15);
        let direct = [2.0f64, 0.0, 1.0, 0.0]
            .iter()
            .map(|c| (c - 0.75f64).powi(2))
            .sum::<f64>()
            / 3.0;
        assert!((s.variance_ddfs() - direct).abs() < 1e-15);
        assert!((s.ddfs_per_thousand_groups() - 750.0).abs() < 1e-12);
    }

    #[test]
    fn merge_in_any_order_is_identical() {
        let histories: Vec<GroupHistory> = (0..20)
            .map(|i| history(&[i as f64 * 37.0 + 1.0], 0.25 * i as f64))
            .collect();
        let mut sequential = StreamStats::new(1_000.0);
        for h in &histories {
            sequential.push(h);
        }
        // Three chunks merged back-to-front.
        let chunk = |range: std::ops::Range<usize>| {
            let mut s = StreamStats::new(1_000.0);
            for h in &histories[range] {
                s.push(h);
            }
            s
        };
        let mut reversed = chunk(13..20);
        reversed.merge(chunk(5..13));
        reversed.merge(chunk(0..5));
        assert_eq!(sequential, reversed);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut s = StreamStats::with_bins(1_000.0, 10);
        // One event per quarter plus one exactly at the mission end.
        s.push(&history(&[50.0, 250.0, 850.0, 1_000.0], 0.0));
        let bins = s.ddf_time_histogram();
        assert_eq!(bins[0], 1);
        assert_eq!(bins[2], 1);
        assert_eq!(bins[8], 1);
        assert_eq!(bins[9], 1); // endpoint clamps into the last bin
        assert_eq!(s.ddfs_through(100.0), 1);
        assert_eq!(s.ddfs_through(300.0), 2);
        assert_eq!(s.ddfs_through(1_000.0), 4);
        assert!((s.per_thousand_through(300.0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bin edge")]
    fn misaligned_horizon_panics() {
        let mut s = StreamStats::with_bins(1_000.0, 10);
        s.push(&history(&[], 0.0));
        s.ddfs_through(150.0);
    }

    #[test]
    #[should_panic(expected = "bin edge")]
    fn horizon_tolerance_stays_tight_at_high_bin_counts() {
        // One ten-thousandth of a bin off: the former `1e-9 * bins`
        // tolerance (1e-3 bins at this resolution) accepted this
        // silently-floored horizon; the relative bound rejects it.
        let mut s = StreamStats::with_bins(1_000.0, 1_000_000);
        s.push(&history(&[], 0.0));
        let bin = 1_000.0 / 1_000_000.0;
        s.ddfs_through(123.0 * bin + 1e-4 * bin);
    }

    #[test]
    fn exact_edges_still_align_at_high_bin_counts() {
        let mut s = StreamStats::with_bins(1_000.0, 1_000_000);
        s.push(&history(&[600.0], 0.0));
        let bin = 1_000.0 / 1_000_000.0;
        // Representable-float noise on an exact edge stays far inside
        // the 1e-9-of-a-bin tolerance.
        assert_eq!(s.ddfs_through(123.0 * bin), 0);
        assert_eq!(s.ddfs_through(700.0), 1);
    }

    #[test]
    #[should_panic(expected = "no groups aggregated")]
    fn empty_mean_panics() {
        StreamStats::new(100.0).mean_ddfs();
    }

    #[test]
    #[should_panic(expected = "no groups aggregated")]
    fn empty_per_thousand_panics() {
        StreamStats::new(100.0).ddfs_per_thousand_groups();
    }

    #[test]
    #[should_panic(expected = "at least two groups")]
    fn single_group_variance_panics() {
        let mut s = StreamStats::new(100.0);
        s.push(&GroupHistory::default());
        s.variance_ddfs();
    }

    #[test]
    #[should_panic(expected = "different missions")]
    fn merge_rejects_mismatched_missions() {
        let mut a = StreamStats::new(100.0);
        a.merge(StreamStats::new(200.0));
    }

    #[test]
    #[should_panic(expected = "different histogram resolutions")]
    fn merge_rejects_mismatched_bins() {
        let mut a = StreamStats::with_bins(100.0, 8);
        a.merge(StreamStats::with_bins(100.0, 16));
    }

    #[test]
    fn availability_matches_stored_formula() {
        let mut s = StreamStats::new(1_000.0);
        s.push(&history(&[], 40.0));
        s.push(&history(&[], 10.0));
        let expect = 1.0 - 50.0 / (2.0 * 8.0 * 1_000.0);
        assert!((s.mean_availability(8) - expect).abs() < 1e-9);
    }

    #[test]
    fn extreme_counts_fall_back_to_float_variance() {
        // Regression: `n·Σx²` here overflows u128, which the former
        // unchecked multiply turned into a debug-build panic (release:
        // silent wraparound). The fallback must return the float value
        // instead.
        let mut s = StreamStats::new(1_000.0);
        s.groups = u64::MAX;
        s.ddf_sum = u64::MAX;
        s.ddf_sum_sq = u128::MAX;
        let expect = (s.groups as f64 * s.ddf_sum_sq as f64 - s.ddf_sum as f64 * s.ddf_sum as f64)
            / (s.groups as f64 * (s.groups - 1) as f64);
        let got = s.variance_ddfs();
        assert!(got.is_finite() && got > 0.0);
        assert_eq!(got, expect);
    }

    #[test]
    fn unit_weights_degrade_weighted_estimators_exactly() {
        let mut s = StreamStats::new(1_000.0);
        for times in [&[100.0, 600.0][..], &[][..], &[700.0][..], &[][..]] {
            s.push(&history(times, 0.0));
        }
        assert_eq!(s.weight_sum(), s.groups() as f64);
        assert_eq!(s.effective_sample_size(), s.groups() as f64);
        // Bit-for-bit, not approximately: the tick scale is a power of
        // two (module docs).
        assert_eq!(s.weighted_mean_ddfs(), s.mean_ddfs());
        assert_eq!(s.weighted_variance_ddfs(), s.variance_ddfs());
        assert_eq!(s.weighted_half_width(1.96), s.half_width(1.96));
        assert_eq!(
            s.weighted_mean_square_ddfs(),
            s.ddf_sum_sq as f64 / s.groups() as f64
        );
    }

    #[test]
    fn weighted_moments_match_direct_formulas() {
        let mut s = StreamStats::new(1_000.0);
        let data: [(&[f64], f64); 4] = [
            (&[100.0, 600.0], -0.7),
            (&[], 0.4),
            (&[700.0], -1.3),
            (&[], 0.0),
        ];
        for (times, lw) in data {
            s.push(&weighted(times, lw));
        }
        let w: Vec<f64> = data.iter().map(|(_, lw)| lw.exp()).collect();
        let d: Vec<f64> = data.iter().map(|(t, _)| t.len() as f64).collect();
        let n = 4.0;
        let wsum: f64 = w.iter().sum();
        let wsq: f64 = w.iter().map(|x| x * x).sum();
        let y: Vec<f64> = w.iter().zip(&d).map(|(w, d)| w * d).collect();
        let ysum: f64 = y.iter().sum();
        let mean = ysum / n;
        let var = y.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n - 1.0);
        // Quantization perturbs each weight by at most 2⁻³³ relative.
        assert!((s.weight_sum() - wsum).abs() < 1e-8);
        assert!((s.effective_sample_size() - wsum * wsum / wsq).abs() < 1e-8);
        assert!((s.weighted_mean_ddfs() - mean).abs() < 1e-8);
        assert!((s.weighted_variance_ddfs() - var).abs() < 1e-8);
        let msq = w.iter().zip(&d).map(|(w, d)| w * d * d).sum::<f64>() / n;
        assert!((s.weighted_mean_square_ddfs() - msq).abs() < 1e-8);
        assert!(s.effective_sample_size() <= s.groups() as f64);
    }

    #[test]
    fn weighted_merge_is_associative_and_order_independent() {
        let histories: Vec<GroupHistory> = (0..24)
            .map(|i| weighted(&[i as f64 * 37.0 + 1.0], 0.13 * i as f64 - 1.5))
            .collect();
        let mut sequential = StreamStats::new(1_000.0);
        for h in &histories {
            sequential.push(h);
        }
        let chunk = |range: std::ops::Range<usize>| {
            let mut s = StreamStats::new(1_000.0);
            for h in &histories[range] {
                s.push(h);
            }
            s
        };
        // (a ⊕ b) ⊕ c against a ⊕ (b ⊕ c), back-to-front.
        let mut left = chunk(0..8);
        left.merge(chunk(8..16));
        left.merge(chunk(16..24));
        let mut bc = chunk(8..16);
        bc.merge(chunk(16..24));
        let mut right = chunk(0..8);
        right.merge(bc);
        assert_eq!(sequential, left);
        assert_eq!(left, right);
        let mut reversed = chunk(16..24);
        reversed.merge(chunk(8..16));
        reversed.merge(chunk(0..8));
        assert_eq!(left, reversed);
    }

    #[test]
    fn weighted_codec_round_trips_bit_identically() {
        let mut s = StreamStats::with_bins(1_000.0, 16);
        for i in 0..12 {
            s.push(&weighted(&[i as f64 * 80.0 + 3.0], 0.21 * i as f64 - 1.0));
        }
        let mut bytes = Vec::new();
        s.encode_into(&mut bytes);
        let back = StreamStats::decode(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn version_1_bytes_decode_as_exact_unit_weights() {
        let mut s = StreamStats::with_bins(1_000.0, 16);
        for i in 0..12 {
            s.push(&history(&[i as f64 * 80.0 + 3.0], 0.7 * i as f64));
        }
        let mut v2 = Vec::new();
        s.encode_into(&mut v2);
        // A version-1 encoding is the version-2 one minus the five
        // weighted u128 fields, which sit between `downtime_ticks`
        // (ends at byte 104) and the histogram length prefix.
        let mut v1 = v2.clone();
        v1.drain(104..184);
        let back = StreamStats::decode_version(&v1, 1).unwrap();
        // The weight-1 reconstruction is exact, so the upgraded state
        // equals the natively accumulated one bit for bit.
        assert_eq!(back, s);
        assert!(StreamStats::decode_version(&v1, 3)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let mut s = StreamStats::with_bins(500.0, 4);
        s.push(&history(&[100.0], 2.0));
        let mut bytes = Vec::new();
        s.encode_into(&mut bytes);
        for len in 0..bytes.len() {
            assert!(
                StreamStats::decode(&bytes[..len]).is_err(),
                "decode accepted a {len}-byte prefix"
            );
        }
        // Trailing garbage is also rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(StreamStats::decode(&long).is_err());
    }

    #[test]
    fn decode_rejects_inconsistent_state() {
        let mut s = StreamStats::with_bins(500.0, 4);
        s.push(&history(&[100.0, 400.0], 0.0));
        let mut bytes = Vec::new();
        s.encode_into(&mut bytes);
        // Flip a histogram bin (the last 8 bytes): total no longer
        // matches the DDF sum.
        let n = bytes.len();
        bytes[n - 8] ^= 0x01;
        assert!(StreamStats::decode(&bytes)
            .unwrap_err()
            .contains("histogram"));
    }

    #[test]
    fn downtime_quantization_is_negligible_and_exact() {
        let mut a = StreamStats::new(1_000.0);
        let mut b = StreamStats::new(1_000.0);
        let values = [0.1, 16.60000000000001, 3.3333333333, 900.0];
        for &v in &values {
            a.push(&history(&[], v));
        }
        for &v in values.iter().rev() {
            b.push(&history(&[], v));
        }
        // Exactly order-independent…
        assert_eq!(a, b);
        // …and within quantization distance of the float sum.
        let float_sum: f64 = values.iter().sum();
        assert!((a.downtime_hours() - float_sum).abs() < 1e-6);
    }
}
