//! Closed-form approximation of the latent-defect DDF count.
//!
//! The paper's conclusion asks for "a tool by which RAID designers can
//! better evaluate the impact of the latent defect occurrence rate…
//! and the scrubbing rate" without running a simulation every time.
//! This module provides that tool: a first-order analytic
//! approximation of the expected DDF count that keeps the
//! time-dependent hazards (the original authors later published a
//! closed form in the same spirit as follow-on work to this paper).
//!
//! Derivation sketch. DDFs are triggered by operational failures
//! (Sections 4.2/5). At time `u`, the group's failure-trigger
//! intensity is `n·h_op(u)` (first-order in the renewal: each of the
//! `n` drives fails at its hazard). The triggering failure loses data
//! iff at least one of the other `n−1` drives is *bad* — down
//! (probability `≈ h_op(u)·E[TTR]`, the stationary down fraction) or
//! carrying an uncorrected defect (probability
//! `≈ 1 − exp(−λ_ld·E[exposure(u)])`, where the exposure is the mean
//! scrub latency, or the whole age `u` when scrubbing is off). Hence
//!
//! ```text
//! E[DDF(t)] ≈ ∫₀ᵗ n·h_op(u) · [1 − (1 − p_bad(u))^(n−1)] du
//! ```
//!
//! The approximation ignores renewal effects (drives replaced after
//! failure are younger than `u`), the post-DDF blocking window, and
//! defect-clearing at DDF restorations — all second-order at
//! base-case rates. The test suite pins its accuracy against the
//! Monte Carlo: within ~15% on the base case and the scrub sweep,
//! degrading gracefully in the saturated no-scrub regime.

use raidsim_dists::LifeDistribution;
use serde::{Deserialize, Serialize};

/// Inputs to the closed-form estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedFormInputs {
    /// Drives per group (the paper's `N+1`).
    pub drives: usize,
    /// Number of concurrent *other* bad drives that loses data (1 for
    /// single parity, 2 for double).
    pub tolerated: usize,
    /// Mean restore duration, hours.
    pub mean_ttr: f64,
    /// Latent defect rate per drive-hour (`None` disables defects).
    pub lambda_ld: Option<f64>,
    /// Mean defect exposure (scrub latency), hours; `None` = never
    /// scrubbed (exposure grows with age).
    pub mean_scrub: Option<f64>,
}

impl ClosedFormInputs {
    /// The paper's Table 2 base case.
    pub fn paper_base_case() -> Self {
        Self {
            drives: 8,
            tolerated: 1,
            mean_ttr: 16.6, // mean of Weibull(6, 12, 2)
            lambda_ld: Some(1.08e-4),
            mean_scrub: Some(156.0), // mean of Weibull(6, 168, 3)
        }
    }
}

/// Expected DDFs per group by time `t`, given the operational hazard
/// `h_op` of a single (non-renewed) drive.
///
/// Uses trapezoidal integration on 2,000 panels — the integrand is
/// smooth.
///
/// # Panics
///
/// Panics if `t` is not positive or the inputs are degenerate
/// (`drives ≤ tolerated`).
pub fn expected_ddfs_per_group(
    inputs: &ClosedFormInputs,
    ttop: &dyn LifeDistribution,
    t: f64,
) -> f64 {
    assert!(t > 0.0 && t.is_finite(), "t must be positive");
    assert!(
        inputs.drives > inputs.tolerated,
        "group must exceed its parity count"
    );
    let n = inputs.drives as f64;
    let others = inputs.drives - 1;

    let p_bad = |u: f64| -> f64 {
        let p_down = (ttop.hazard(u) * inputs.mean_ttr).min(1.0);
        let p_defect = match inputs.lambda_ld {
            None => 0.0,
            Some(lambda) => {
                let exposure = match inputs.mean_scrub {
                    Some(m) => m,
                    None => u, // defects accumulate from age 0
                };
                -(-lambda * exposure).exp_m1()
            }
        };
        (p_down + p_defect).min(1.0)
    };

    // P(at least `tolerated` of the `others` drives bad).
    let p_loss = |p: f64| -> f64 { binomial_tail(others, inputs.tolerated, p) };

    let panels = 2_000;
    let h = t / panels as f64;
    let integrand = |u: f64| n * ttop.hazard(u) * p_loss(p_bad(u));
    let mut total = 0.5 * (integrand(1e-9) + integrand(t));
    for i in 1..panels {
        total += integrand(i as f64 * h);
    }
    total * h
}

fn binom(n: usize, k: usize) -> f64 {
    let mut out = 1.0;
    for i in 0..k {
        out *= (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// Upper binomial tail `P(X ≥ tolerated)` for `X ~ Binomial(n, p)`,
/// summed term-by-term from `k = tolerated` upward.
///
/// Summing the tail directly keeps full relative precision at small
/// `p`: the complement form `1 − P(X < tolerated)` cancels to the
/// f64 rounding floor once the tail drops below ~1e-16 — for
/// `tolerated = 2`, `n = 7`, `p = 1e-9` the true tail is ~2.1e-17,
/// which the complement rounds to 0 (or a stray ulp of 1), a total
/// loss of significance, while the direct sum is exact to within a
/// few ulps. For double parity the integrand is *made of* such tails,
/// so this is the difference between a real estimate and noise.
fn binomial_tail(n: usize, tolerated: usize, p: f64) -> f64 {
    if tolerated == 0 {
        return 1.0;
    }
    let mut tail = 0.0;
    for k in tolerated..=n {
        tail += binom(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
    }
    tail.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
    use crate::run::Simulator;
    use raidsim_dists::Weibull3;

    fn threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    fn base_ttop() -> Weibull3 {
        Weibull3::two_param(461_386.0, 1.12).unwrap()
    }

    #[test]
    fn matches_monte_carlo_on_base_case() {
        let inputs = ClosedFormInputs::paper_base_case();
        let analytic = 1_000.0 * expected_ddfs_per_group(&inputs, &base_ttop(), 87_600.0);
        let mc = Simulator::new(RaidGroupConfig::paper_base_case().unwrap())
            .run_parallel(6_000, 31, threads())
            .ddfs_per_thousand_groups();
        let rel = (analytic - mc).abs() / mc;
        assert!(rel < 0.15, "analytic = {analytic}, mc = {mc}, rel = {rel}");
    }

    #[test]
    fn matches_monte_carlo_across_scrub_sweep() {
        use raidsim_hdd::scrub::ScrubPolicy;
        for (eta, mean_scrub) in [(48.0, 6.0 + 48.0 * 0.893), (336.0, 6.0 + 336.0 * 0.893)] {
            let inputs = ClosedFormInputs {
                mean_scrub: Some(mean_scrub),
                ..ClosedFormInputs::paper_base_case()
            };
            let analytic = 1_000.0 * expected_ddfs_per_group(&inputs, &base_ttop(), 87_600.0);
            let cfg = RaidGroupConfig::paper_base_case()
                .unwrap()
                .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))
                .unwrap();
            let mc = Simulator::new(cfg)
                .run_parallel(6_000, 37, threads())
                .ddfs_per_thousand_groups();
            let rel = (analytic - mc).abs() / mc;
            assert!(
                rel < 0.2,
                "eta = {eta}: analytic = {analytic}, mc = {mc}, rel = {rel}"
            );
        }
    }

    #[test]
    fn no_latent_defects_reduces_to_op_only_estimate() {
        let inputs = ClosedFormInputs {
            lambda_ld: None,
            mean_scrub: None,
            ..ClosedFormInputs::paper_base_case()
        };
        let analytic = 1_000.0 * expected_ddfs_per_group(&inputs, &base_ttop(), 87_600.0);
        // Figure 6's f(t)-r(t) level: a fraction of one DDF per 1,000
        // groups.
        assert!(analytic > 0.05 && analytic < 1.0, "analytic = {analytic}");
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mc = Simulator::new(cfg)
            .run_parallel(150_000, 41, threads())
            .ddfs_per_thousand_groups();
        // Rare-event counts: compare within a factor of 2.
        assert!(
            analytic < 2.0 * mc + 0.2 && mc < 2.0 * analytic + 0.2,
            "analytic = {analytic}, mc = {mc}"
        );
    }

    #[test]
    fn double_parity_closed_form_is_far_smaller() {
        let single = ClosedFormInputs::paper_base_case();
        let double = ClosedFormInputs {
            tolerated: 2,
            ..single
        };
        let a1 = expected_ddfs_per_group(&single, &base_ttop(), 87_600.0);
        let a2 = expected_ddfs_per_group(&double, &base_ttop(), 87_600.0);
        assert!(a2 < a1 / 10.0, "single = {a1}, double = {a2}");
        // And the MC agrees on the direction and rough size.
        let cfg = RaidGroupConfig {
            redundancy: Redundancy::DoubleParity,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        let mc = Simulator::new(cfg)
            .run_parallel(10_000, 43, threads())
            .ddfs_per_thousand_groups();
        let analytic = 1_000.0 * a2;
        assert!(
            analytic < 4.0 * mc + 2.0 && mc < 4.0 * analytic + 2.0,
            "analytic = {analytic}, mc = {mc}"
        );
    }

    #[test]
    fn no_scrub_estimate_is_within_factor_two_of_mc() {
        // The saturated regime stresses the approximation most (the
        // formula ignores defect-clearing at DDF restorations).
        let inputs = ClosedFormInputs {
            mean_scrub: None,
            ..ClosedFormInputs::paper_base_case()
        };
        let analytic = 1_000.0 * expected_ddfs_per_group(&inputs, &base_ttop(), 87_600.0);
        use raidsim_hdd::scrub::ScrubPolicy;
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::Disabled)
            .unwrap();
        let mc = Simulator::new(cfg)
            .run_parallel(4_000, 47, threads())
            .ddfs_per_thousand_groups();
        assert!(
            analytic < 2.0 * mc && mc < 2.0 * analytic,
            "analytic = {analytic}, mc = {mc}"
        );
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binom(7, 0), 1.0);
        assert_eq!(binom(7, 1), 7.0);
        assert_eq!(binom(7, 2), 21.0);
    }

    #[test]
    fn binomial_tail_matches_high_precision_reference_at_small_p() {
        // References computed with exact rational arithmetic
        // (Python `fractions`, n = 7), rounded once to f64.
        for (tolerated, p, reference) in [
            (1, 1e-6, 6.999_979_000_035e-6),
            (2, 1e-6, 2.099_993_000_010_5e-11),
            (3, 1e-6, 3.499_989_500_012_6e-17),
            (1, 1e-9, 6.999_999_979e-9),
            (2, 1e-9, 2.099_999_993e-17),
            (3, 1e-9, 3.499_999_989_5e-26),
        ] {
            let tail = binomial_tail(7, tolerated, p);
            let rel = (tail - reference).abs() / reference;
            assert!(
                rel < 1e-12,
                "tolerated = {tolerated}, p = {p}: tail = {tail:e}, \
                 reference = {reference:e}, rel = {rel:e}"
            );
        }
    }

    #[test]
    fn binomial_tail_beats_the_complement_form_it_replaced() {
        // Regression for the double-parity catastrophic cancellation:
        // 1 − P(X < 2) rounds to the f64 noise floor once the true
        // tail is below ~1e-16, while the direct sum keeps full
        // relative precision.
        let (n, tolerated, p) = (7usize, 2usize, 1e-9f64);
        let mut survive = 0.0;
        for k in 0..tolerated {
            survive += binom(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
        }
        let complement = (1.0 - survive).max(0.0);
        let reference = 2.099_999_993e-17;
        assert!(
            (complement - reference).abs() / reference >= 1.0,
            "complement form unexpectedly accurate: {complement:e}"
        );
        let tail = binomial_tail(n, tolerated, p);
        assert!((tail - reference).abs() / reference < 1e-12);
    }

    #[test]
    fn binomial_tail_endpoints() {
        assert_eq!(binomial_tail(7, 0, 0.5), 1.0);
        assert_eq!(binomial_tail(7, 1, 0.0), 0.0);
        assert_eq!(binomial_tail(7, 7, 1.0), 1.0);
        // Saturation guard: near p = 1 the terms sum to 1 up to
        // rounding and must never exceed it.
        assert!(binomial_tail(7, 1, 1.0 - 1e-16) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "t must be positive")]
    fn rejects_bad_horizon() {
        expected_ddfs_per_group(&ClosedFormInputs::paper_base_case(), &base_ttop(), 0.0);
    }
}
