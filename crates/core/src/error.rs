use raidsim_dists::DistError;
use std::fmt;

/// Errors from configuring or running the core model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration field was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A transition distribution could not be constructed.
    Distribution(DistError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration field {field}: {reason}")
            }
            CoreError::Distribution(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Distribution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for CoreError {
    fn from(e: DistError) -> Self {
        CoreError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            field: "drives",
            reason: "too few".into(),
        };
        assert!(e.to_string().contains("drives"));
        let d: CoreError = DistError::Empty.into();
        assert!(std::error::Error::source(&d).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
