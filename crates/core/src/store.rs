//! Pluggable checkpoint I/O with deterministic fault injection.
//!
//! The paper's argument is that real systems fail in correlated, messy
//! ways that idealized models miss — and the simulator's own host is no
//! exception. Long runs hit full disks, interrupted syscalls, failed
//! fsyncs, and torn renames, and a checkpoint layer that has never
//! executed those paths under test will corrupt or lose state exactly
//! when it matters. This module splits checkpoint persistence into a
//! small [`SnapshotStore`] trait with three implementations:
//!
//! * [`FsStore`] — the production path: write to a sibling temp file,
//!   fsync, rename over the target, best-effort directory sync. A crash
//!   mid-write leaves either the old snapshot or the new one, never a
//!   torn file.
//! * [`MemStore`] — an in-memory map, used by tests and by callers that
//!   want snapshot semantics without a filesystem.
//! * [`FaultStore`] — a decorator that injects a **deterministic,
//!   replayable schedule of faults** ([`FaultPlan`]) in front of any
//!   inner store. Every store operation consumes one operation index;
//!   the plan maps indices to [`FaultKind`]s, so a failure sequence
//!   reproduces exactly from its plan (or from the seed that generated
//!   it) — the property the torture harness (`cargo xtask torture`,
//!   `tests/fault_injection.rs`) relies on to sweep every fault at
//!   every operation index.
//!
//! Faults are classified **transient** (retry may succeed: `EINTR`,
//! short write, fsync hiccup) or **persistent** (retry is pointless:
//! `ENOSPC`, torn destination) via [`CheckpointError::transient`]. The
//! retry layer ([`RetryBackoff`], [`AttemptBudget`]) retries only
//! transient failures under a bounded, clock-free attempt budget; the
//! CLI wraps it with wall-clock sleeps and a deadline (the core stays
//! clock-free per the determinism lint). What happens after the budget
//! is exhausted — degrade cadence or abort — is the driver's decision
//! (see [`crate::run`]).

use crate::checkpoint::CheckpointError;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Abstract checkpoint I/O: one atomic snapshot write, one full read.
///
/// `write` must be atomic with respect to crashes of the *caller*: on
/// `Ok(())` the snapshot at `path` is durably the given bytes; on
/// `Err(_)` the previous snapshot (if any) must still be intact unless
/// the error says otherwise (a torn destination reports a persistent
/// error and is caught by the checkpoint checksum on load).
pub trait SnapshotStore {
    /// Atomically replaces the snapshot at `path` with `bytes`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] describing the failed operation;
    /// [`CheckpointError::transient`] tells the retry layer whether
    /// another attempt could succeed.
    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError>;

    /// Reads the entire snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the snapshot cannot be read.
    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError>;
}

/// Maps an OS error to a typed, classified [`CheckpointError::Io`].
///
/// Interrupted / would-block / timed-out are the retryable kinds; all
/// other OS errors (no space, permission, missing directory, I/O
/// errors) are persistent — retrying without operator intervention
/// cannot help.
pub fn classify_io(path: &Path, e: &std::io::Error) -> CheckpointError {
    use std::io::ErrorKind;
    CheckpointError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
        transient: matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        ),
    }
}

/// The production filesystem store: temp file + fsync + atomic rename.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStore;

impl SnapshotStore for FsStore {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file = std::fs::File::create(&tmp).map_err(|e| classify_io(&tmp, &e))?;
        file.write_all(bytes).map_err(|e| classify_io(&tmp, &e))?;
        file.sync_all().map_err(|e| classify_io(&tmp, &e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| classify_io(path, &e))?;
        // Durability of the rename itself needs the directory synced;
        // best-effort, since not every platform allows opening one.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError> {
        std::fs::read(path).map_err(|e| classify_io(path, &e))
    }
}

/// An in-memory snapshot store: writes are trivially atomic, reads
/// return the last written image. Keyed by the path's display string.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    files: BTreeMap<String, Vec<u8>>,
}

impl MemStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the stored image for `path`, if any.
    pub fn get(&self, path: &Path) -> Option<&[u8]> {
        self.files
            .get(&path.display().to_string())
            .map(Vec::as_slice)
    }
}

impl SnapshotStore for MemStore {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.files
            .insert(path.display().to_string(), bytes.to_vec());
        Ok(())
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError> {
        self.files
            .get(&path.display().to_string())
            .cloned()
            .ok_or_else(|| CheckpointError::Io {
                path: path.display().to_string(),
                reason: "no snapshot stored at this path".to_string(),
                transient: false,
            })
    }
}

/// One injectable storage fault. The taxonomy follows the failure modes
/// a checkpoint writer actually meets (DESIGN.md §17): each kind states
/// what the caller observes *and* what state the fault leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the write fails persistently; the destination is
    /// untouched (the temp file never replaced it).
    Enospc,
    /// `EINTR`: the operation fails transiently; a retry may succeed.
    Eintr,
    /// Short write: the temp file is torn but the rename never happens,
    /// so the destination is untouched. Transient.
    PartialWrite,
    /// `fsync` failure: data may not be durable; the write is reported
    /// failed (transient — a fresh temp file is retried from scratch)
    /// and the destination is untouched.
    FsyncFail,
    /// Torn rename: the destination ends up with a truncated image and
    /// the write reports a persistent failure. The torn image is
    /// *detectable* — the checkpoint checksum refuses it on load — so
    /// this exercises the "never resume from a torn file" property.
    TornRename,
    /// Read corruption: the read "succeeds" but one byte is flipped,
    /// exercising checksum validation downstream. Ignored on writes.
    ReadCorruption,
    /// Latency stall: the operation succeeds after invoking the stall
    /// hook (the CLI sleeps; core tests count). Exercises interruption
    /// and watchdog paths without failing the operation.
    Stall {
        /// Stall duration passed to the hook, in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// Parses a fault name as used in plan specs: `enospc`, `eintr`,
    /// `partial`, `fsync`, `torn`, `corrupt`, or `stall<MILLIS>`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "enospc" => Ok(FaultKind::Enospc),
            "eintr" => Ok(FaultKind::Eintr),
            "partial" => Ok(FaultKind::PartialWrite),
            "fsync" => Ok(FaultKind::FsyncFail),
            "torn" => Ok(FaultKind::TornRename),
            "corrupt" => Ok(FaultKind::ReadCorruption),
            _ => match name.strip_prefix("stall") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(millis) => Ok(FaultKind::Stall { millis }),
                    Err(_) => Err(format!("bad stall duration in fault kind `{name}`")),
                },
                None => Err(format!(
                    "unknown fault kind `{name}` (expected enospc, eintr, partial, fsync, \
                     torn, corrupt, or stall<MILLIS>)"
                )),
            },
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Enospc => write!(f, "enospc"),
            FaultKind::Eintr => write!(f, "eintr"),
            FaultKind::PartialWrite => write!(f, "partial"),
            FaultKind::FsyncFail => write!(f, "fsync"),
            FaultKind::TornRename => write!(f, "torn"),
            FaultKind::ReadCorruption => write!(f, "corrupt"),
            FaultKind::Stall { millis } => write!(f, "stall{millis}"),
        }
    }
}

/// A reproducible schedule of injected faults, keyed by the decorated
/// store's operation index (each `write` or `read` attempt consumes one
/// index, so "the third store operation fails" means the same thing on
/// every replay).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// One-shot faults at specific operation indices.
    entries: BTreeMap<u64, FaultKind>,
    /// Sticky fault: every operation at or beyond this index faults —
    /// models a disk that fails and stays failed (e.g. `ENOSPC`).
    sticky: Option<(u64, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan: no faults; the decorated store is transparent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a one-shot fault at operation index `op` (builder style).
    #[must_use]
    pub fn at(mut self, op: u64, kind: FaultKind) -> Self {
        self.entries.insert(op, kind);
        self
    }

    /// Makes every operation at or beyond `op` fail with `kind`
    /// (builder style). One-shot entries below `op` still apply.
    #[must_use]
    pub fn from_op(mut self, op: u64, kind: FaultKind) -> Self {
        self.sticky = Some((op, kind));
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.sticky.is_none()
    }

    /// The fault (if any) scheduled for operation index `op`. Sticky
    /// faults take precedence over one-shot entries at the same index.
    pub fn fault_for(&self, op: u64) -> Option<FaultKind> {
        if let Some((from, kind)) = self.sticky {
            if op >= from {
                return Some(kind);
            }
        }
        self.entries.get(&op).copied()
    }

    /// Derives a pseudo-random plan from a seed: over operation indices
    /// `[0, horizon)`, roughly one in `density` operations gets a fault
    /// whose kind is also seed-derived (stalls are excluded — seeded
    /// plans stay wall-clock-free so they can run anywhere, including
    /// the clock-free core tests). The same `(seed, horizon, density)`
    /// always yields the same plan, so any failure sequence found by a
    /// randomized sweep is replayable from its seed alone.
    pub fn seeded(seed: u64, horizon: u64, density: u64) -> Self {
        let density = density.max(1);
        let mut plan = FaultPlan::new();
        for op in 0..horizon {
            let h = splitmix64(seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if h.is_multiple_of(density) {
                let kind = match (h >> 32) % 6 {
                    0 => FaultKind::Enospc,
                    1 => FaultKind::Eintr,
                    2 => FaultKind::PartialWrite,
                    3 => FaultKind::FsyncFail,
                    4 => FaultKind::TornRename,
                    _ => FaultKind::ReadCorruption,
                };
                plan.entries.insert(op, kind);
            }
        }
        plan
    }

    /// Parses a plan spec: comma-separated `OP:KIND` (one-shot) or
    /// `OP+:KIND` (sticky from `OP` onward) entries, e.g.
    /// `2:eintr,5:partial,8+:enospc` or `4:stall2000`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (op_part, kind_part) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` is missing `:` (OP:KIND)"))?;
            let kind = FaultKind::parse(kind_part.trim())?;
            let op_part = op_part.trim();
            if let Some(op) = op_part.strip_suffix('+') {
                let op = op
                    .parse::<u64>()
                    .map_err(|_| format!("bad operation index in fault entry `{entry}`"))?;
                plan.sticky = Some((op, kind));
            } else {
                let op = op_part
                    .parse::<u64>()
                    .map_err(|_| format!("bad operation index in fault entry `{entry}`"))?;
                plan.entries.insert(op, kind);
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 finalizer — the same bijective mixer the RNG stream
/// factory uses, inlined here for plain integer hashing (no generator
/// is constructed; seeded plans are hashes, not RNG draws).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fault the [`FaultStore`] actually injected, for post-run forensics
/// ("which operation failed, and how") in tests and the torture report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Operation index the fault fired at.
    pub op: u64,
    /// What was injected.
    pub kind: FaultKind,
    /// Whether the faulted operation was a write or a read.
    pub write: bool,
}

/// Decorates any [`SnapshotStore`] with a deterministic fault schedule.
///
/// Each `write`/`read` *attempt* consumes one operation index — a retry
/// is the next operation and may therefore succeed, which is exactly
/// how transient faults behave in the wild and what the retry layer's
/// tests rely on.
pub struct FaultStore<S> {
    inner: S,
    plan: FaultPlan,
    op: u64,
    log: Vec<InjectedFault>,
    stall: Option<Box<dyn FnMut(u64) + Send>>,
}

impl<S: fmt::Debug> fmt::Debug for FaultStore<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultStore")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .field("op", &self.op)
            .field("log", &self.log)
            .field("stall", &self.stall.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl<S: SnapshotStore> FaultStore<S> {
    /// Wraps `inner`, injecting faults according to `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultStore {
            inner,
            plan,
            op: 0,
            log: Vec::new(),
            stall: None,
        }
    }

    /// Installs the hook invoked (with the stall's milliseconds) when a
    /// [`FaultKind::Stall`] fires. The core never sleeps — the CLI
    /// installs a real sleep here; core tests install a counter.
    #[must_use]
    pub fn with_stall_hook(mut self, hook: Box<dyn FnMut(u64) + Send>) -> Self {
        self.stall = Some(hook);
        self
    }

    /// The faults injected so far, in operation order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Number of store operations attempted so far (the next index).
    pub fn operations(&self) -> u64 {
        self.op
    }

    /// Consumes the decorator, returning the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn next_op(&mut self) -> (u64, Option<FaultKind>) {
        let op = self.op;
        self.op += 1;
        (op, self.plan.fault_for(op))
    }

    fn injected_err(path: &Path, kind: FaultKind) -> CheckpointError {
        let (reason, transient) = match kind {
            FaultKind::Enospc => ("injected: no space left on device (ENOSPC)", false),
            FaultKind::Eintr => ("injected: interrupted system call (EINTR)", true),
            FaultKind::PartialWrite => ("injected: short write, temp file torn", true),
            FaultKind::FsyncFail => ("injected: fsync failed, durability unknown", true),
            FaultKind::TornRename => ("injected: rename torn, destination corrupt", false),
            // Corruption and stalls do not produce errors.
            FaultKind::ReadCorruption | FaultKind::Stall { .. } => unreachable!(),
        };
        CheckpointError::Io {
            path: path.display().to_string(),
            reason: reason.to_string(),
            transient,
        }
    }
}

impl<S: SnapshotStore> SnapshotStore for FaultStore<S> {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let (op, fault) = self.next_op();
        let Some(kind) = fault else {
            return self.inner.write(path, bytes);
        };
        match kind {
            // Read-only fault: transparent on the write path.
            FaultKind::ReadCorruption => return self.inner.write(path, bytes),
            FaultKind::Stall { millis } => {
                self.log.push(InjectedFault {
                    op,
                    kind,
                    write: true,
                });
                if let Some(hook) = self.stall.as_mut() {
                    hook(millis);
                }
                return self.inner.write(path, bytes);
            }
            _ => {}
        }
        self.log.push(InjectedFault {
            op,
            kind,
            write: true,
        });
        if kind == FaultKind::TornRename {
            // The destination really is replaced by a truncated image —
            // the checkpoint checksum must catch it on load.
            let torn = &bytes[..bytes.len() / 2];
            self.inner.write(path, torn)?;
        }
        Err(Self::injected_err(path, kind))
    }

    fn read(&mut self, path: &Path) -> Result<Vec<u8>, CheckpointError> {
        let (op, fault) = self.next_op();
        match fault {
            Some(FaultKind::Eintr) => {
                self.log.push(InjectedFault {
                    op,
                    kind: FaultKind::Eintr,
                    write: false,
                });
                Err(CheckpointError::Io {
                    path: path.display().to_string(),
                    reason: "injected: interrupted system call (EINTR)".to_string(),
                    transient: true,
                })
            }
            Some(FaultKind::ReadCorruption) => {
                self.log.push(InjectedFault {
                    op,
                    kind: FaultKind::ReadCorruption,
                    write: false,
                });
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0xff;
                }
                Ok(bytes)
            }
            Some(FaultKind::Stall { millis }) => {
                self.log.push(InjectedFault {
                    op,
                    kind: FaultKind::Stall { millis },
                    write: false,
                });
                if let Some(hook) = self.stall.as_mut() {
                    hook(millis);
                }
                self.inner.read(path)
            }
            // Write-only faults are transparent on the read path.
            _ => self.inner.read(path),
        }
    }
}

/// Retry policy for transient checkpoint-store failures. The driver's
/// retry loop asks for the attempt budget up front, then calls
/// [`RetryBackoff::pause`] between attempts; returning `false` aborts
/// the remaining budget (the CLI does this when its wall-clock deadline
/// passes — the core itself never reads a clock).
pub trait RetryBackoff {
    /// Maximum attempts per checkpoint write (1 = no retries).
    fn attempts(&self) -> u32;

    /// Called once when a write (with its possible retries) starts.
    fn begin(&mut self) {}

    /// Called after attempt `attempt` (1-based) failed with `error`,
    /// before the next attempt. Return `false` to stop retrying now.
    fn pause(&mut self, attempt: u32, error: &CheckpointError) -> bool {
        let _ = (attempt, error);
        true
    }
}

/// Clock-free retry policy: a fixed attempt budget, no pauses. The
/// deterministic default inside the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptBudget(pub u32);

impl RetryBackoff for AttemptBudget {
    fn attempts(&self) -> u32 {
        self.0.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("snap.ckpt")
    }

    #[test]
    fn mem_store_round_trips() {
        let mut store = MemStore::new();
        store.write(&p(), b"abc").unwrap();
        assert_eq!(store.read(&p()).unwrap(), b"abc");
        store.write(&p(), b"defg").unwrap();
        assert_eq!(store.read(&p()).unwrap(), b"defg");
        let missing = store.read(Path::new("other")).unwrap_err();
        assert!(!missing.transient());
    }

    #[test]
    fn plan_spec_round_trips() {
        let plan = FaultPlan::parse("2:eintr, 5:partial,8+:enospc,4:stall2000").unwrap();
        assert_eq!(plan.fault_for(2), Some(FaultKind::Eintr));
        assert_eq!(plan.fault_for(5), Some(FaultKind::PartialWrite));
        assert_eq!(plan.fault_for(4), Some(FaultKind::Stall { millis: 2000 }));
        assert_eq!(plan.fault_for(3), None);
        assert_eq!(plan.fault_for(8), Some(FaultKind::Enospc));
        assert_eq!(plan.fault_for(900), Some(FaultKind::Enospc));
    }

    #[test]
    fn plan_spec_rejects_garbage() {
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("1:frobnicate").is_err());
        assert!(FaultPlan::parse("x:eintr").is_err());
        assert!(FaultPlan::parse("3:stallfast").is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 64, 3);
        let b = FaultPlan::seeded(7, 64, 3);
        let c = FaultPlan::seeded(8, 64, 3);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ somewhere in 64 ops");
        assert!(
            !a.is_empty(),
            "density 3 over 64 ops should inject something"
        );
        // Stalls are excluded from seeded plans.
        for op in 0..64 {
            assert!(!matches!(a.fault_for(op), Some(FaultKind::Stall { .. })));
        }
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let plan = FaultPlan::new().at(0, FaultKind::Eintr);
        let mut store = FaultStore::new(MemStore::new(), plan);
        let err = store.write(&p(), b"abc").unwrap_err();
        assert!(err.transient());
        store.write(&p(), b"abc").unwrap();
        assert_eq!(store.read(&p()).unwrap(), b"abc");
        assert_eq!(store.injected().len(), 1);
    }

    #[test]
    fn enospc_is_persistent_and_preserves_destination() {
        let plan = FaultPlan::new().at(1, FaultKind::Enospc);
        let mut store = FaultStore::new(MemStore::new(), plan);
        store.write(&p(), b"old").unwrap();
        let err = store.write(&p(), b"new").unwrap_err();
        assert!(!err.transient());
        assert_eq!(store.read(&p()).unwrap(), b"old");
    }

    #[test]
    fn torn_rename_truncates_destination() {
        let plan = FaultPlan::new().at(1, FaultKind::TornRename);
        let mut store = FaultStore::new(MemStore::new(), plan);
        store.write(&p(), b"oldold").unwrap();
        let err = store.write(&p(), b"newnew").unwrap_err();
        assert!(!err.transient());
        assert_eq!(store.read(&p()).unwrap(), b"new", "half the new image");
    }

    #[test]
    fn read_corruption_flips_one_byte() {
        let plan = FaultPlan::new().at(1, FaultKind::ReadCorruption);
        let mut store = FaultStore::new(MemStore::new(), plan);
        store.write(&p(), b"abcd").unwrap();
        let corrupt = store.read(&p()).unwrap();
        assert_ne!(corrupt, b"abcd");
        assert_eq!(corrupt.len(), 4);
        assert_eq!(store.read(&p()).unwrap(), b"abcd", "one-shot fault");
    }

    #[test]
    fn stall_invokes_hook_then_succeeds() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let stalled = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&stalled);
        let plan = FaultPlan::new().at(0, FaultKind::Stall { millis: 250 });
        let mut store = FaultStore::new(MemStore::new(), plan)
            .with_stall_hook(Box::new(move |ms| sink.store(ms, Ordering::Relaxed)));
        store.write(&p(), b"abc").unwrap();
        assert_eq!(stalled.load(Ordering::Relaxed), 250);
        assert_eq!(store.read(&p()).unwrap(), b"abc");
    }

    #[test]
    fn sticky_faults_never_clear() {
        let plan = FaultPlan::new().from_op(0, FaultKind::Enospc);
        let mut store = FaultStore::new(MemStore::new(), plan);
        for _ in 0..5 {
            assert!(store.write(&p(), b"abc").is_err());
        }
        assert_eq!(store.operations(), 5);
        assert_eq!(store.injected().len(), 5);
    }

    #[test]
    fn attempt_budget_is_at_least_one() {
        assert_eq!(AttemptBudget(0).attempts(), 1);
        assert_eq!(AttemptBudget(4).attempts(), 4);
    }
}
