//! The MTTDL closed forms the paper argues against (Section 4.1,
//! equations 1–3).
//!
//! Kept as the comparison baseline for every experiment: the Figure 6
//! MTTDL line, the denominators of Table 3's ratios, and the eq. 3
//! worked example.

use serde::{Deserialize, Serialize};

/// Hours per year used in the paper's unit conversions.
pub const HOURS_PER_YEAR: f64 = 8_760.0;

/// MTTDL of an `N+1` RAID group with constant disk failure rate
/// `lambda` and constant repair rate `mu` (paper equation 1):
///
/// ```text
/// MTTDL = ((2N + 1)λ + μ) / (N(N+1)λ²)
/// ```
///
/// `n_data` is `N`, the number of data drives.
///
/// # Panics
///
/// Panics if `n_data == 0` or the rates are not positive and finite.
pub fn mttdl_full(n_data: usize, lambda: f64, mu: f64) -> f64 {
    validate(n_data, lambda, mu);
    let n = n_data as f64;
    ((2.0 * n + 1.0) * lambda + mu) / (n * (n + 1.0) * lambda * lambda)
}

/// Simplified MTTDL (paper equation 2), valid when `μ ≫ λ`:
///
/// ```text
/// MTTDL ≈ μ / (N(N+1)λ²) = MTTF² / (N(N+1)·MTTR)
/// ```
///
/// # Panics
///
/// Panics if `n_data == 0` or the rates are not positive and finite.
pub fn mttdl_approx(n_data: usize, lambda: f64, mu: f64) -> f64 {
    validate(n_data, lambda, mu);
    let n = n_data as f64;
    mu / (n * (n + 1.0) * lambda * lambda)
}

/// Convenience form of equation 2 in the units the paper quotes: MTTF
/// and MTTR in hours.
///
/// # Panics
///
/// Panics if inputs are not positive and finite.
pub fn mttdl_from_mttf(n_data: usize, mttf_hours: f64, mttr_hours: f64) -> f64 {
    mttdl_approx(n_data, 1.0 / mttf_hours, 1.0 / mttr_hours)
}

/// Expected DDF count from the MTTDL method (paper equation 3):
/// `E[N(t)] = groups × hours / MTTDL`, the renewal-theory estimate the
/// paper shows to be wrong when its assumptions fail.
///
/// # Panics
///
/// Panics if `mttdl_hours` is not positive and finite.
pub fn expected_ddfs(mttdl_hours: f64, groups: f64, hours: f64) -> f64 {
    assert!(
        mttdl_hours.is_finite() && mttdl_hours > 0.0,
        "MTTDL must be positive and finite"
    );
    groups * hours / mttdl_hours
}

/// The paper's equation 3 worked example, bundled for the experiment
/// binaries: MTBF = 461,386 h, MTTR = 12 h, N = 7, 1,000 RAID groups,
/// 10 years.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Equation3Example {
    /// MTTDL in hours.
    pub mttdl_hours: f64,
    /// MTTDL in years (the paper quotes 36,162).
    pub mttdl_years: f64,
    /// Expected DDFs for 1,000 groups over 10 years (the paper
    /// quotes 0.28).
    pub expected_ddfs: f64,
}

/// Computes the equation 3 worked example.
pub fn equation3_example() -> Equation3Example {
    let mttdl_hours = mttdl_from_mttf(7, 461_386.0, 12.0);
    Equation3Example {
        mttdl_hours,
        mttdl_years: mttdl_hours / HOURS_PER_YEAR,
        expected_ddfs: expected_ddfs(mttdl_hours, 1_000.0, 10.0 * HOURS_PER_YEAR),
    }
}

fn validate(n_data: usize, lambda: f64, mu: f64) {
    assert!(n_data > 0, "need at least one data drive");
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "failure rate must be positive and finite"
    );
    assert!(
        mu.is_finite() && mu > 0.0,
        "repair rate must be positive and finite"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation3_worked_example_matches_paper() {
        let ex = equation3_example();
        // "an MTTDL of 36,162 years (MTBF = 461,386 hrs; MTTR=12 hrs;
        // N=7)".
        assert!(
            (ex.mttdl_years - 36_162.0).abs() < 25.0,
            "mttdl_years = {}",
            ex.mttdl_years
        );
        // "0.28" expected failures; 0.2770 to four places.
        assert!(
            (ex.expected_ddfs - 0.28).abs() < 0.01,
            "expected = {}",
            ex.expected_ddfs
        );
    }

    #[test]
    fn full_and_approx_agree_when_mu_dominates() {
        let lambda = 1.0 / 461_386.0;
        let mu = 1.0 / 12.0;
        let full = mttdl_full(7, lambda, mu);
        let approx = mttdl_approx(7, lambda, mu);
        assert!(
            (full - approx).abs() / full < 1e-3,
            "full = {full}, approx = {approx}"
        );
        // Equation 1 is always the larger (it adds the (2N+1)λ term).
        assert!(full > approx);
    }

    #[test]
    fn full_and_approx_diverge_when_repair_is_slow() {
        // With mu comparable to lambda the simplification is bad.
        let lambda = 1.0e-3;
        let mu = 2.0e-3;
        let full = mttdl_full(7, lambda, mu);
        let approx = mttdl_approx(7, lambda, mu);
        assert!((full - approx).abs() / full > 0.5);
    }

    #[test]
    fn larger_groups_fail_sooner() {
        let lambda = 1.0 / 461_386.0;
        let mu = 1.0 / 12.0;
        assert!(mttdl_approx(7, lambda, mu) > mttdl_approx(13, lambda, mu));
    }

    #[test]
    fn faster_repair_helps_linearly() {
        let lambda = 1.0 / 461_386.0;
        let a = mttdl_from_mttf(7, 461_386.0, 12.0);
        let b = mttdl_from_mttf(7, 461_386.0, 6.0);
        assert!((b / a - 2.0).abs() < 1e-9);
        let _ = lambda;
    }

    #[test]
    fn expected_ddfs_scales_with_groups_and_time() {
        let m = 1.0e8;
        assert!(
            (expected_ddfs(m, 2_000.0, 87_600.0) / expected_ddfs(m, 1_000.0, 87_600.0) - 2.0).abs()
                < 1e-12
        );
        assert!(
            (expected_ddfs(m, 1_000.0, 87_600.0) / expected_ddfs(m, 1_000.0, 8_760.0) - 10.0).abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "at least one data drive")]
    fn zero_data_drives_panics() {
        mttdl_approx(0, 1e-6, 0.1);
    }

    #[test]
    #[should_panic(expected = "failure rate")]
    fn bad_lambda_panics() {
        mttdl_approx(7, 0.0, 0.1);
    }
}
