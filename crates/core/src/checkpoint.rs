//! Crash-safe checkpoint/resume for long Monte Carlo runs.
//!
//! The paper's headline numbers come from sequential Monte Carlo over
//! tens of thousands of multi-year RAID-group histories, and the
//! low-DDF-rate configurations (RAID 6, aggressive scrubbing) need the
//! largest group counts to converge — exactly the runs most likely to be
//! killed by a timeout, an OOM, or an operator Ctrl-C. This module makes
//! those runs preemptible: a [`SimCheckpoint`] is a versioned,
//! checksummed binary snapshot of everything the streamed precision
//! driver needs to continue, and resuming from it is **provably
//! bit-identical** to never having been interrupted.
//!
//! # Why resume is exact
//!
//! Three properties combine:
//!
//! 1. Group `i` always draws from RNG stream `(master_seed, i)`
//!    ([`raidsim_dists::rng::stream`]), so simulating groups `[n, m)`
//!    tomorrow yields the same histories as it would have today.
//! 2. The batch runner completes groups as a **prefix** `[0, n)` of the
//!    index space. Workers claim index batches *dynamically* within a
//!    driver batch (see the scheduling notes in [`crate::run`]), but a
//!    driver batch `[lo, hi)` only returns once every index in it has
//!    completed — the worker joins are a barrier — and checkpoints are
//!    only taken at those boundaries, so the completed-prefix watermark
//!    `n` (the accumulator's group count) fully describes "which groups
//!    are done" regardless of how claims interleaved inside the batch.
//! 3. [`StreamStats`] state is exact integers, so the accumulator after
//!    resuming and merging `[n, m)` is bit-identical to the
//!    uninterrupted accumulator over `[0, m)` at any thread count (the
//!    determinism argument in [`crate::stats`]).
//!
//! The driver state (batch schedule, stopping targets, master seed) is
//! stored alongside the statistics, so the resumed run evaluates its
//! stopping rules at the same batch boundaries with the same thresholds
//! and therefore stops at the same group count with the same
//! [`crate::run::StopCriterion`].
//!
//! # File format (version 2, little-endian throughout)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "RAIDSIMC"
//! 8       4     format version (u32)
//! 12      8     payload length L (u64)
//! 20      L     payload
//! 20+L    8     FNV-1a 64 checksum of bytes [0, 20+L)
//! ```
//!
//! Payload:
//!
//! ```text
//! 8     config fingerprint (u64; see [`config_fingerprint`])
//! 1     driver mode (0 = fixed group count, 1 = precision-controlled)
//! 8     target relative half-width (f64 bits)
//! 8     confidence level (f64 bits)
//! 8     batch size (u64)
//! 8     group cap (u64)
//! 8     master seed (u64)
//! 8     completed group count n (u64; completed indices are [0, n))
//! rest  [`StreamStats`] state ([`StreamStats::encode_into`])
//! ```
//!
//! Version 2 extended the [`StreamStats`] block with the five weighted
//! importance-sampling moments and folded the bias policy into the
//! fingerprint. Version-1 files (always from unbiased runs) are still
//! readable: their weighted moments are reconstructed exactly as
//! weight-1 sums ([`StreamStats::decode_version`]), and the runner
//! validates them against [`legacy_config_fingerprint_v1`]. Writes are
//! always version 2.
//!
//! Writes are atomic: the snapshot is written to a sibling temp file,
//! fsynced, and renamed over the target, so a crash mid-write leaves
//! either the previous checkpoint or the new one — never a torn file.
//! Loads validate the magic, version, checksum, and every structural
//! invariant of the payload, and return typed [`CheckpointError`]s
//! instead of panicking or silently resuming the wrong run.
//!
//! The codec is hand-rolled: the accumulator's exact state uses `u128`
//! fields, which the vendored offline serde does not support.

use crate::config::RaidGroupConfig;
use crate::engine::BiasPolicy;
use crate::stats::{Decoder, StreamStats};
use crate::store::{FsStore, SnapshotStore};
use std::fmt;
use std::path::Path;

/// On-disk format version; bumped whenever the layout or the meaning of
/// any field changes. Version 2 added the weighted importance-sampling
/// moments; version-1 files are still accepted on read.
pub const FORMAT_VERSION: u32 = 2;

/// The oldest format version [`SimCheckpoint::from_bytes`] still reads.
pub const OLDEST_READABLE_VERSION: u32 = 1;

/// Leading magic bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"RAIDSIMC";

/// Typed failures of checkpoint save, load, or resume validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// Path involved.
        path: String,
        /// Operating-system error text.
        reason: String,
        /// Whether a retry could plausibly succeed (`EINTR`-class
        /// failures) or is pointless (`ENOSPC`, permissions, torn
        /// destination). The retry layer in [`crate::store`] only
        /// retries transient failures.
        transient: bool,
    },
    /// The file is not a checkpoint, is torn, or fails its checksum or
    /// structural validation.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The file was written by a different (incompatible) code/format
    /// version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The checkpoint belongs to a different run: another configuration,
    /// engine, seed, or precision schedule. Resuming would silently
    /// produce wrong statistics, so it is refused.
    ConfigMismatch {
        /// Which part of the run identity differs.
        field: &'static str,
        /// Human-readable detail.
        reason: String,
    },
    /// The run's state can no longer be snapshotted: writing a
    /// checkpoint now would produce a file that resumes into *different*
    /// statistics than continuing would (e.g. after a quarantined group
    /// punched a hole in the completed prefix). The run keeps going;
    /// only checkpointing is refused.
    Unresumable {
        /// Why the in-memory state cannot be snapshotted.
        reason: String,
    },
}

impl CheckpointError {
    /// True when retrying the failed operation could plausibly succeed.
    /// Only I/O failures are ever transient; corruption, version and
    /// config mismatches, and unresumable state are final.
    pub fn transient(&self) -> bool {
        matches!(
            self,
            CheckpointError::Io {
                transient: true,
                ..
            }
        )
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io {
                path,
                reason,
                transient,
            } => {
                let class = if *transient {
                    "transient"
                } else {
                    "persistent"
                };
                write!(f, "checkpoint I/O error ({class}) on {path}: {reason}")
            }
            CheckpointError::Corrupt { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} is not the supported version {expected}"
            ),
            CheckpointError::ConfigMismatch { field, reason } => write!(
                f,
                "checkpoint belongs to a different run ({field}): {reason}"
            ),
            CheckpointError::Unresumable { reason } => {
                write!(f, "run state is no longer checkpointable: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Fingerprint binding a checkpoint to one run identity: the full
/// configuration (drives, redundancy, mission, every transition
/// distribution's parameters, spare policy), the engine implementation,
/// the bias policy (a resumed run must re-draw under the same measure
/// or the weights are meaningless), and the on-disk format version.
///
/// The hash is FNV-1a 64 over the configuration's and policy's `Debug`
/// renderings — Rust's float formatting is shortest-round-trip and
/// deterministic, so equal configurations always fingerprint equally
/// and any parameter change (even in the last significant digit)
/// changes the fingerprint.
pub fn config_fingerprint(cfg: &RaidGroupConfig, engine_name: &str, bias: BiasPolicy) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write(&FORMAT_VERSION.to_le_bytes());
    hash.write(engine_name.as_bytes());
    hash.write(b"\0");
    hash.write(format!("{cfg:?}").as_bytes());
    hash.write(b"\0");
    hash.write(format!("{bias:?}").as_bytes());
    hash.finish()
}

/// The fingerprint a version-1 build recorded for the same run.
///
/// Version-1 files predate importance sampling, so their hash covers
/// neither a bias policy nor the version-2 format constant; the runner
/// uses this to validate a version-1 checkpoint when resuming an
/// unbiased run (a biased resume of a version-1 file is refused
/// outright — the old fingerprint cannot attest to a measure change).
pub fn legacy_config_fingerprint_v1(cfg: &RaidGroupConfig, engine_name: &str) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write(&1u32.to_le_bytes());
    hash.write(engine_name.as_bytes());
    hash.write(b"\0");
    hash.write(format!("{cfg:?}").as_bytes());
    hash.finish()
}

/// Folds the session tuning into a run fingerprint.
///
/// The default tuning (block draws on, exact math) is draw-for-draw
/// bit-identical to the scalar path, so it must **not** perturb the
/// fingerprint — snapshots written before the block kernels existed
/// still resume, and shards from tuned and untuned builds still merge.
/// Fast math is the one knob that may change results (within the
/// documented tolerance), so it gets its own fingerprint domain:
/// exact-math artifacts never resume or merge across fast-math ones,
/// in either direction.
pub fn tuned_fingerprint(base: u64, fast_math: bool) -> u64 {
    if !fast_math {
        return base;
    }
    let mut hash = Fnv1a::new();
    hash.write(&base.to_le_bytes());
    hash.write(b"fast-math");
    hash.finish()
}

/// The precision driver's bookkeeping, persisted so a resumed run
/// evaluates its stopping rules on the same schedule with the same
/// thresholds (a different batch size would check the criteria at
/// different boundaries and could stop at a different group count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverState {
    /// `true` for precision-controlled runs, `false` for fixed
    /// group-count runs (where the width criteria are disabled).
    pub precision_mode: bool,
    /// Relative confidence-half-width target (0 in fixed mode).
    pub target_relative: f64,
    /// Confidence level (0 in fixed mode).
    pub confidence: f64,
    /// Groups per batch; checkpoints land on multiples of this.
    pub batch: u64,
    /// Group cap (or the fixed group count).
    pub max_groups: u64,
    /// Master seed of the per-group RNG streams.
    pub seed: u64,
}

impl DriverState {
    /// Schedule for a fixed group-count run: no width criteria,
    /// `groups` is both the target and the cap, simulated in
    /// `batch`-sized checkpointable slices.
    pub fn fixed(groups: u64, batch: u64, seed: u64) -> Self {
        Self {
            precision_mode: false,
            target_relative: 0.0,
            confidence: 0.0,
            batch,
            max_groups: groups,
            seed,
        }
    }

    /// Schedule for a precision-controlled run — the parameters of
    /// [`crate::run::Simulator::run_until_precision_streaming`].
    pub fn precision(
        target_relative: f64,
        confidence: f64,
        batch: u64,
        max_groups: u64,
        seed: u64,
    ) -> Self {
        Self {
            precision_mode: true,
            target_relative,
            confidence,
            batch,
            max_groups,
            seed,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(self.precision_mode));
        out.extend_from_slice(&self.target_relative.to_bits().to_le_bytes());
        out.extend_from_slice(&self.confidence.to_bits().to_le_bytes());
        out.extend_from_slice(&self.batch.to_le_bytes());
        out.extend_from_slice(&self.max_groups.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, String> {
        let mode = r.u8()?;
        if mode > 1 {
            return Err(format!("driver mode byte {mode} is not 0 or 1"));
        }
        Ok(Self {
            precision_mode: mode == 1,
            target_relative: f64::from_bits(r.u64()?),
            confidence: f64::from_bits(r.u64()?),
            batch: r.u64()?,
            max_groups: r.u64()?,
            seed: r.u64()?,
        })
    }

    /// Returns the first field on which `self` (the requested run) and
    /// `stored` (the checkpoint) disagree. Floats compare by bit
    /// pattern: the resumed schedule must be *exactly* the one that
    /// produced the checkpoint, or bit-identity is forfeit.
    fn first_mismatch(&self, stored: &DriverState) -> Option<(&'static str, String)> {
        if self.precision_mode != stored.precision_mode {
            return Some((
                "mode",
                format!(
                    "requested {} run, checkpoint is from a {} run",
                    mode_name(self.precision_mode),
                    mode_name(stored.precision_mode)
                ),
            ));
        }
        if self.target_relative.to_bits() != stored.target_relative.to_bits() {
            return Some((
                "target_relative",
                format!(
                    "requested {}, checkpoint has {}",
                    self.target_relative, stored.target_relative
                ),
            ));
        }
        if self.confidence.to_bits() != stored.confidence.to_bits() {
            return Some((
                "confidence",
                format!(
                    "requested {}, checkpoint has {}",
                    self.confidence, stored.confidence
                ),
            ));
        }
        if self.batch != stored.batch {
            return Some((
                "batch",
                format!("requested {}, checkpoint has {}", self.batch, stored.batch),
            ));
        }
        if self.max_groups != stored.max_groups {
            return Some((
                "max_groups",
                format!(
                    "requested {}, checkpoint has {}",
                    self.max_groups, stored.max_groups
                ),
            ));
        }
        if self.seed != stored.seed {
            return Some((
                "seed",
                format!("requested {}, checkpoint has {}", self.seed, stored.seed),
            ));
        }
        None
    }
}

fn mode_name(precision: bool) -> &'static str {
    if precision {
        "precision-controlled"
    } else {
        "fixed group-count"
    }
}

/// A resumable snapshot of an in-flight (or finished) run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCheckpoint {
    /// Format version of the file this snapshot was parsed from
    /// ([`FORMAT_VERSION`] for freshly built snapshots). The runner
    /// needs it to pick the matching fingerprint scheme: version-1
    /// files recorded [`legacy_config_fingerprint_v1`].
    pub format_version: u32,
    /// Run identity (see [`config_fingerprint`]).
    pub fingerprint: u64,
    /// The precision driver's schedule and thresholds.
    pub driver: DriverState,
    /// Merged statistics over the completed group prefix
    /// `[0, stats.groups())`.
    pub stats: StreamStats,
}

impl SimCheckpoint {
    /// Completed groups: indices `[0, groups_done())` are folded into
    /// [`SimCheckpoint::stats`].
    pub fn groups_done(&self) -> u64 {
        self.stats.groups()
    }

    /// Serializes the full checkpoint file image (header, payload,
    /// checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        Self::bytes_from_parts(self.fingerprint, &self.driver, &self.stats)
    }

    /// Serializes a checkpoint image from borrowed parts, without
    /// requiring an assembled `SimCheckpoint` — the batch runner
    /// checkpoints mid-run from its live accumulator, and this borrowed
    /// form is what lets it do so without cloning the [`StreamStats`].
    pub fn bytes_from_parts(
        fingerprint: u64,
        driver: &DriverState,
        stats: &StreamStats,
    ) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&fingerprint.to_le_bytes());
        driver.encode_into(&mut payload);
        payload.extend_from_slice(&stats.groups().to_le_bytes());
        stats.encode_into(&mut payload);

        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let mut hash = Fnv1a::new();
        hash.write(&out);
        out.extend_from_slice(&hash.finish().to_le_bytes());
        out
    }

    /// Parses a checkpoint file image.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for a bad magic, torn length,
    /// failed checksum, or invalid payload;
    /// [`CheckpointError::VersionMismatch`] when the format version is
    /// not [`FORMAT_VERSION`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let corrupt = |reason: String| CheckpointError::Corrupt { reason };
        let mut r = Decoder::new(bytes);
        let magic: [u8; 8] = r.take().map_err(|_| {
            corrupt(format!(
                "file is {} byte(s), shorter than the header",
                bytes.len()
            ))
        })?;
        if magic != MAGIC {
            return Err(corrupt("leading magic bytes are not \"RAIDSIMC\"".into()));
        }
        let version = r
            .u32()
            .map_err(|_| corrupt("truncated before the version field".into()))?;
        if !(OLDEST_READABLE_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let payload_len = r
            .u64()
            .map_err(|_| corrupt("truncated before the payload length".into()))?
            as usize;
        let expected_total = 28usize
            .checked_add(payload_len)
            .ok_or_else(|| corrupt("payload length overflows".into()))?;
        if bytes.len() != expected_total {
            return Err(corrupt(format!(
                "file is {} byte(s), header promises {expected_total}",
                bytes.len()
            )));
        }
        let body = &bytes[..20 + payload_len];
        let mut hash = Fnv1a::new();
        hash.write(body);
        let mut tail = Decoder::new(&bytes[20 + payload_len..]);
        let stored_sum = tail
            .u64()
            .map_err(|_| corrupt("truncated before the checksum".into()))?;
        if hash.finish() != stored_sum {
            return Err(corrupt(
                "checksum mismatch (the file was altered or torn)".into(),
            ));
        }

        let mut p = Decoder::new(&bytes[20..20 + payload_len]);
        let fingerprint = p.u64().map_err(|e| corrupt(format!("payload: {e}")))?;
        let driver = DriverState::decode(&mut p).map_err(|e| corrupt(format!("payload: {e}")))?;
        let groups_done = p.u64().map_err(|e| corrupt(format!("payload: {e}")))?;
        let stats = StreamStats::decode_version(p.remaining(), version)
            .map_err(|e| corrupt(format!("statistics state: {e}")))?;
        if stats.groups() != groups_done {
            return Err(corrupt(format!(
                "completed-group count {groups_done} disagrees with the \
                 statistics state ({} groups)",
                stats.groups()
            )));
        }
        if groups_done > driver.max_groups {
            return Err(corrupt(format!(
                "completed-group count {groups_done} exceeds the group cap {}",
                driver.max_groups
            )));
        }
        Ok(Self {
            format_version: version,
            fingerprint,
            driver,
            stats,
        })
    }

    /// Atomically writes the checkpoint to `path`: the image goes to a
    /// sibling `<path>.tmp`, is flushed to disk, and is renamed over the
    /// target, so a crash mid-write can never leave a torn file at
    /// `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the temp file cannot be created,
    /// written, synced, or renamed.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        Self::save_parts(path, self.fingerprint, &self.driver, &self.stats)
    }

    /// Atomically writes a checkpoint assembled from borrowed parts —
    /// the clone-free counterpart of [`SimCheckpoint::save`], used by
    /// the batch runner's periodic mid-run snapshots.
    ///
    /// # Errors
    ///
    /// As [`SimCheckpoint::save`].
    pub fn save_parts(
        path: &Path,
        fingerprint: u64,
        driver: &DriverState,
        stats: &StreamStats,
    ) -> Result<(), CheckpointError> {
        Self::save_parts_to(&mut FsStore, path, fingerprint, driver, stats)
    }

    /// As [`SimCheckpoint::save_parts`], but through any
    /// [`SnapshotStore`] — the seam the drivers use so checkpoint I/O
    /// can be redirected (in-memory, fault-injected) without touching
    /// the codec.
    ///
    /// # Errors
    ///
    /// Whatever the store reports.
    pub fn save_parts_to(
        store: &mut dyn SnapshotStore,
        path: &Path,
        fingerprint: u64,
        driver: &DriverState,
        stats: &StreamStats,
    ) -> Result<(), CheckpointError> {
        let bytes = Self::bytes_from_parts(fingerprint, driver, stats);
        store.write(path, &bytes)
    }

    /// Reads and parses the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the file cannot be read; otherwise
    /// as [`SimCheckpoint::from_bytes`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::load_from(&mut FsStore, path)
    }

    /// As [`SimCheckpoint::load`], but through any [`SnapshotStore`].
    ///
    /// # Errors
    ///
    /// As [`SimCheckpoint::load`].
    pub fn load_from(store: &mut dyn SnapshotStore, path: &Path) -> Result<Self, CheckpointError> {
        let bytes = store.read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Checks that this checkpoint belongs to the run described by
    /// `fingerprint` and `driver` — called by the runner before any
    /// simulation work, so a wrong checkpoint is refused instead of
    /// silently producing wrong statistics.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ConfigMismatch`] naming the first field that
    /// differs.
    pub fn validate_for(
        &self,
        fingerprint: u64,
        driver: &DriverState,
    ) -> Result<(), CheckpointError> {
        if self.fingerprint != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                field: "config",
                reason: format!(
                    "fingerprint {:016x} in the checkpoint, {fingerprint:016x} for the \
                     requested configuration/engine",
                    self.fingerprint
                ),
            });
        }
        if let Some((field, reason)) = driver.first_mismatch(&self.driver) {
            return Err(CheckpointError::ConfigMismatch { field, reason });
        }
        Ok(())
    }
}

/// Gathers per-shard snapshots (the scatter half is
/// [`crate::run::Simulator::run_shard`]) into the checkpoint an
/// unsharded run over the union range would have written —
/// byte-for-byte, at any shard count, merged in any order.
///
/// A shard snapshot is an ordinary fixed-mode [`SimCheckpoint`] whose
/// driver records `max_groups = hi` (the shard's exclusive upper group
/// index); the lower bound is recovered as `hi − stats.groups()`, so
/// the format needed no new fields. The merge refuses — with a typed
/// [`CheckpointError::ConfigMismatch`] naming the offending field —
/// unless every shard carries the same fingerprint, seed, and batch,
/// is fixed-mode, and the ranges tile `[0, G)` exactly (no gaps, no
/// overlaps, starting at zero). Statistics fold via the exact-integer
/// [`StreamStats::merge`], which is associative and commutative, so
/// the result is bit-identical to the unsharded accumulator.
///
/// # Errors
///
/// [`CheckpointError::ConfigMismatch`] as described above (also for an
/// empty shard list).
pub fn merge_shards(mut shards: Vec<SimCheckpoint>) -> Result<SimCheckpoint, CheckpointError> {
    let Some(first) = shards.first() else {
        return Err(CheckpointError::ConfigMismatch {
            field: "shards",
            reason: "no shard snapshots to merge".to_string(),
        });
    };
    let fingerprint = first.fingerprint;
    let seed = first.driver.seed;
    let batch = first.driver.batch;
    for (i, shard) in shards.iter().enumerate() {
        if shard.format_version != FORMAT_VERSION {
            return Err(CheckpointError::ConfigMismatch {
                field: "format_version",
                reason: format!(
                    "shard {i} is format version {}, expected {FORMAT_VERSION}",
                    shard.format_version
                ),
            });
        }
        if shard.fingerprint != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                field: "fingerprint",
                reason: format!(
                    "shard {i} has fingerprint {:016x}, shard 0 has {fingerprint:016x} — \
                     shards must come from the same configuration, engine, bias, and math mode",
                    shard.fingerprint
                ),
            });
        }
        if shard.driver.precision_mode {
            return Err(CheckpointError::ConfigMismatch {
                field: "mode",
                reason: format!(
                    "shard {i} is from a precision-controlled run; \
                     shards are fixed group-range snapshots"
                ),
            });
        }
        if shard.driver.seed != seed {
            return Err(CheckpointError::ConfigMismatch {
                field: "seed",
                reason: format!(
                    "shard {i} has seed {}, shard 0 has {seed}",
                    shard.driver.seed
                ),
            });
        }
        if shard.driver.batch != batch {
            return Err(CheckpointError::ConfigMismatch {
                field: "batch",
                reason: format!(
                    "shard {i} has batch {}, shard 0 has {batch}",
                    shard.driver.batch
                ),
            });
        }
        if shard.stats.groups() > shard.driver.max_groups {
            return Err(CheckpointError::ConfigMismatch {
                field: "range",
                reason: format!(
                    "shard {i} holds {} groups but its range ends at group {}",
                    shard.stats.groups(),
                    shard.driver.max_groups
                ),
            });
        }
    }
    // Recover each shard's [lo, hi) and demand an exact tiling of
    // [0, G). Sorting by lo makes gaps and overlaps adjacent-pair
    // checks; the merge itself is order-insensitive.
    // The secondary key orders a zero-width shard (possible when the
    // shard count exceeds the group count) before the full shard that
    // starts at the same index.
    shards.sort_by_key(|s| (s.driver.max_groups - s.stats.groups(), s.driver.max_groups));
    let mut expected_lo = 0u64;
    for shard in &shards {
        let lo = shard.driver.max_groups - shard.stats.groups();
        if lo != expected_lo {
            let kind = if lo > expected_lo { "gap" } else { "overlap" };
            return Err(CheckpointError::ConfigMismatch {
                field: "range",
                reason: format!(
                    "{kind} in shard coverage: expected a shard starting at group \
                     {expected_lo}, found one starting at {lo}"
                ),
            });
        }
        expected_lo = shard.driver.max_groups;
    }
    let total = expected_lo;
    let mut iter = shards.into_iter();
    let Some(first) = iter.next() else {
        unreachable!("non-empty checked above");
    };
    let mut stats = first.stats;
    for shard in iter {
        stats.merge(shard.stats);
    }
    Ok(SimCheckpoint {
        format_version: FORMAT_VERSION,
        fingerprint,
        driver: DriverState::fixed(total, batch, seed),
        stats,
    })
}

/// FNV-1a 64-bit: tiny, dependency-free, and deterministic across
/// platforms — adequate for torn-write/bit-rot detection (any single
/// flipped bit changes the digest), not for adversarial integrity.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Simulator;

    fn base() -> RaidGroupConfig {
        RaidGroupConfig::paper_base_case().unwrap()
    }

    fn sample_checkpoint() -> SimCheckpoint {
        let sim = Simulator::new(base());
        let stats = sim.run_streaming(60, 9, 2);
        SimCheckpoint {
            format_version: FORMAT_VERSION,
            fingerprint: config_fingerprint(&base(), "des", BiasPolicy::None),
            driver: DriverState {
                precision_mode: true,
                target_relative: 0.25,
                confidence: 0.95,
                batch: 20,
                max_groups: 500,
                seed: 9,
            },
            stats,
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        assert_eq!(SimCheckpoint::from_bytes(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("raidsim_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = sample_checkpoint();
        ckpt.save(&path).unwrap();
        assert_eq!(SimCheckpoint::load(&path).unwrap(), ckpt);
        // Overwriting is also atomic and clean.
        ckpt.save(&path).unwrap();
        assert_eq!(SimCheckpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_corrupt_at_every_length() {
        let bytes = sample_checkpoint().to_bytes();
        for len in 0..bytes.len() {
            match SimCheckpoint::from_bytes(&bytes[..len]) {
                Err(CheckpointError::Corrupt { .. }) => {}
                other => panic!("{len}-byte prefix: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match SimCheckpoint::from_bytes(&bad) {
                Err(CheckpointError::Corrupt { .. } | CheckpointError::VersionMismatch { .. }) => {}
                other => panic!("flip at byte {i}: expected an error, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SimCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt { .. })
        ));

        let mut bytes = sample_checkpoint().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Recompute the checksum so the version check is what fires.
        let n = bytes.len();
        let mut hash = Fnv1a::new();
        hash.write(&bytes[..n - 8]);
        let sum = hash.finish();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SimCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::VersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn fingerprint_separates_configs_engines_versions_and_biases() {
        let a = config_fingerprint(&base(), "des", BiasPolicy::None);
        assert_eq!(
            a,
            config_fingerprint(&base(), "des", BiasPolicy::None),
            "not deterministic"
        );
        assert_ne!(a, config_fingerprint(&base(), "timeline", BiasPolicy::None));
        let mut cfg = base();
        cfg.drives = 9;
        assert_ne!(a, config_fingerprint(&cfg, "des", BiasPolicy::None));
        // A sub-percent parameter nudge still changes the fingerprint.
        let mut cfg = base();
        cfg.mission_hours += 1.0;
        assert_ne!(a, config_fingerprint(&cfg, "des", BiasPolicy::None));
        // The sampling measure is part of the run identity…
        let tilt = BiasPolicy::HazardTilt {
            op_theta: 1.5,
            latent_theta: 0.0,
        };
        assert_ne!(a, config_fingerprint(&base(), "des", tilt));
        let other_tilt = BiasPolicy::HazardTilt {
            op_theta: 1.5,
            latent_theta: 0.1,
        };
        assert_ne!(
            config_fingerprint(&base(), "des", tilt),
            config_fingerprint(&base(), "des", other_tilt)
        );
        // …and the version-1 scheme is distinct from every version-2
        // fingerprint of the same run.
        assert_ne!(a, legacy_config_fingerprint_v1(&base(), "des"));
    }

    #[test]
    fn version_1_files_parse_with_exact_unit_weights() {
        let ckpt = sample_checkpoint();
        let mut bytes = ckpt.to_bytes();
        // Rewrite the image into the version-1 layout: drop the five
        // weighted u128 stats fields (bytes 104..184 of the stats
        // block) and re-stamp version, payload length, and checksum.
        let stats_start = 20 + 8 + 41 + 8; // header, fingerprint, driver, groups_done
        bytes.drain(stats_start + 104..stats_start + 184);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let payload_len = (bytes.len() - 28) as u64;
        bytes[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let n = bytes.len();
        let mut hash = Fnv1a::new();
        hash.write(&bytes[..n - 8]);
        let sum = hash.finish();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());

        let v1 = SimCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(v1.format_version, 1);
        // The unbiased run's weighted moments reconstruct exactly, so
        // the parsed statistics equal the natively accumulated ones
        // bit for bit.
        assert_eq!(v1.stats, ckpt.stats);
        assert_eq!(v1.driver, ckpt.driver);
        assert_eq!(v1.fingerprint, ckpt.fingerprint);
    }

    #[test]
    fn validate_for_names_the_mismatch() {
        let ckpt = sample_checkpoint();
        let mut driver = ckpt.driver;
        assert!(ckpt.validate_for(ckpt.fingerprint, &driver).is_ok());

        assert!(matches!(
            ckpt.validate_for(ckpt.fingerprint ^ 1, &driver),
            Err(CheckpointError::ConfigMismatch {
                field: "config",
                ..
            })
        ));
        driver.seed = 10;
        assert!(matches!(
            ckpt.validate_for(ckpt.fingerprint, &driver),
            Err(CheckpointError::ConfigMismatch { field: "seed", .. })
        ));
        driver = ckpt.driver;
        driver.batch = 64;
        assert!(matches!(
            ckpt.validate_for(ckpt.fingerprint, &driver),
            Err(CheckpointError::ConfigMismatch { field: "batch", .. })
        ));
        driver = ckpt.driver;
        driver.precision_mode = false;
        assert!(matches!(
            ckpt.validate_for(ckpt.fingerprint, &driver),
            Err(CheckpointError::ConfigMismatch { field: "mode", .. })
        ));
    }

    #[test]
    fn unwritable_directory_is_an_io_error() {
        let ckpt = sample_checkpoint();
        let path = Path::new("/nonexistent-raidsim-dir/run.ckpt");
        assert!(matches!(ckpt.save(path), Err(CheckpointError::Io { .. })));
        assert!(matches!(
            SimCheckpoint::load(path),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vector: "foobar" -> 0x85944171f73967e8.
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }
}
