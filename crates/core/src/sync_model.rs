//! Synchronization model of the worker pool: the [`SyncOps`] seam and
//! an exhaustive interleaving checker for the epoch handshake.
//!
//! The pool's correctness argument ("the last check-out is the quiesce
//! point, so the finished set is always an exact prefix of the
//! group-index space") used to rest on property tests that *sample* a
//! handful of interleavings. This module machine-checks it instead:
//!
//! * **[`PoolCore`]** is the pure control state of the protocol —
//!   epoch counter, published job, active-worker count, shutdown and
//!   panic latches — with every guarded transition expressed as a
//!   method (`publish`, `worker_poll`, `check_out`, `quiesce_poll`,
//!   `retire`, `request_shutdown`, `mark_panicked`). The production
//!   pool in [`crate::pool`] executes **these exact methods** inside
//!   its mutex; the model checker executes the same methods from a
//!   virtual scheduler. There is one copy of the protocol logic.
//! * **[`SyncOps`]** abstracts the synchronization substrate the
//!   transitions run on. [`StdSync`] is the production implementation
//!   (one `Mutex<PoolCore>`, two `Condvar`s, with the
//!   atomic-release-and-wait semantics `poll_until` documents).
//!   [`check`] interprets the same operations with a virtual scheduler:
//!   `guarded` is one atomic step, a failed poll atomically parks the
//!   virtual thread on its condition variable, and `wake` moves parked
//!   threads back to runnable.
//! * **[`check`]** runs a depth-first search over *every* scheduling
//!   decision of a bounded [`Scenario`] (workers × epochs × claims),
//!   pruning on exact encoded states (not lossy hashes, so pruning can
//!   never mask a violation). At every state it asserts: no group index
//!   is ever merged twice (no double-claimed batch), the simulated
//!   set at each quiesce point is exactly the prefix `[0, hi)` (the
//!   checkpoint watermark), a supervised worker death resubmits its
//!   unmerged ranges so survivors finish the epoch with full coverage
//!   (while a *total* loss aborts, propagating to the coordinator's
//!   quiesce wait with every worker exiting), and no reachable state
//!   strands a sleeping thread with nobody left to wake it (no lost
//!   wakeup, no deadlock).
//!
//! The model's faithfulness argument, step by step, is laid out in
//! DESIGN.md §15. Its key reductions: scheduling decisions only matter
//! at synchronization points, so each lock region is one atomic step
//! (regions are serialized by the mutex in production); purely local
//! work (simulating the groups of one claimed range) commutes with
//! everything and is folded into one step; and the epoch accumulators
//! are exact-integer state whose merges commute bit-identically, so the
//! model tracks *which* indices were simulated rather than their
//! values. [`Mutation`]s deliberately break the protocol — dropping a
//! wakeup, parking outside the lock, under-counting `active` — and the
//! test suite asserts the checker catches every one, so "the model
//! found no violation" is evidence about the protocol, not about a
//! checker too weak to see bugs.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, PoisonError};

/// The pool's two condition variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cv {
    /// Workers wait here for the next epoch (or shutdown).
    Work,
    /// The coordinator waits here for the epoch to quiesce.
    Quiesced,
}

/// Which waiters a guarded transition requires waking. Returned by the
/// [`PoolCore`] transitions so neither implementation can forget a
/// notification — dropping one is exactly the lost-wakeup class the
/// checker exists to rule out (and [`Mutation::SkipPublishWake`] proves
/// it would catch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unapplied Wake is a lost wakeup"]
pub enum Wake {
    /// No waiter needs waking.
    None,
    /// Wake every worker parked on [`Cv::Work`].
    Work,
    /// Wake the coordinator parked on [`Cv::Quiesced`].
    Quiesced,
    /// Wake both sides (panic propagation).
    Both,
}

/// Control metadata of one published epoch (one driver batch).
///
/// Deliberately `Copy`: everything a worker needs to *decide* with. The
/// shared claim cursor and the epoch accumulators are data, not
/// control, and live outside [`PoolCore`] (behind a plain mutex in
/// production, as bookkeeping in the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// First group index of the epoch (inclusive).
    pub lo: u64,
    /// One past the last group index (exclusive).
    pub hi: u64,
    /// Effective claim size (see [`effective_claim`]).
    pub claim: u64,
    /// `true`: collect per-batch histories; `false`: stream into the
    /// epoch accumulator.
    pub collect: bool,
}

/// Pure control state of the epoch handshake.
///
/// `epoch` strictly increases; a worker serves a job exactly once per
/// epoch (it tracks the last epoch it served and only accepts a newer
/// one). The invariants the transitions preserve — checked in every
/// interleaving by [`check`] — are listed in the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolCore {
    /// Current epoch number; `0` before the first publish.
    pub epoch: u64,
    /// The published job, `Some` from publish to retire.
    pub job: Option<JobSpec>,
    /// Workers still draining the current epoch.
    pub active: usize,
    /// Set once; workers exit at their next idle poll.
    pub shutdown: bool,
    /// Set by a worker's panic guard; observed at the quiesce wait.
    pub panicked: bool,
    /// Workers that died (panicked) over the pool's lifetime and were
    /// supervised out (see [`PoolCore::mark_lost`]).
    pub lost: usize,
    /// `[start, end)` group ranges a dead worker claimed but never
    /// merged, awaiting a survivor. Living in the *control* state —
    /// not the data plane — is what makes supervision race-free:
    /// [`PoolCore::check_out`] inspects this queue in the same guarded
    /// step as the check-out decision, so no interleaving can quiesce
    /// an epoch while resubmitted work is unserved.
    pub resubmit: Vec<(u64, u64)>,
    /// Scenarios published into the current fused-sweep epoch; `0`
    /// outside a sweep. A sweep is one epoch whose global index space
    /// grows as the coordinator appends scenarios ([`extend_sweep`])
    /// *while workers are active* — the cross-scenario queue that lets
    /// a worker steal from scenario `k+1` the moment scenario `k`'s
    /// cursor runs dry, instead of checking out and re-parking at a
    /// per-scenario quiesce barrier.
    ///
    /// [`extend_sweep`]: PoolCore::extend_sweep
    pub scenarios_published: u64,
    /// Set once the coordinator has appended the sweep's last
    /// scenario; workers that drain the final published cursor before
    /// this is set must park ([`SweepPoll::Wait`]) rather than check
    /// out, or a fast worker would quiesce the epoch while scenarios
    /// are still coming.
    pub sweep_sealed: bool,
    threads: usize,
}

/// A worker's idle-poll outcome ([`PoolCore::worker_poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerPoll {
    /// Shutdown requested: exit the serve loop.
    Shutdown,
    /// A new epoch is published: serve it (the `u64` is the epoch to
    /// record as seen).
    Job(JobSpec, u64),
    /// Nothing new: wait on [`Cv::Work`].
    Wait,
}

/// A worker's check-out outcome ([`PoolCore::check_out`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Checked out; deliver the wake.
    Out(Wake),
    /// A dead worker's resubmitted range is waiting: the caller takes
    /// it, stays checked in, and checks out again after merging it.
    Redo((u64, u64)),
}

/// A sweep worker's scenario-boundary poll outcome
/// ([`PoolCore::sweep_poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPoll {
    /// The next scenario's cursor is published: advance to it.
    Next,
    /// The worker has drained every published scenario and the sweep is
    /// sealed (or shutting down): fall through to the normal
    /// check-out/redo path.
    Drained,
    /// The worker is ahead of the coordinator: wait on [`Cv::Work`] for
    /// the next scenario (or the seal).
    Wait,
}

/// The coordinator's quiesce-poll outcome ([`PoolCore::quiesce_poll`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuiescePoll {
    /// Every worker has checked out of the epoch.
    Quiesced,
    /// A worker panicked; re-raise after retiring the job.
    Panicked,
    /// Workers still active: wait on [`Cv::Quiesced`].
    Wait,
}

impl PoolCore {
    /// Fresh pool state for `threads` workers.
    pub fn new(threads: usize) -> Self {
        PoolCore {
            epoch: 0,
            job: None,
            active: 0,
            shutdown: false,
            panicked: false,
            lost: 0,
            resubmit: Vec::new(),
            scenarios_published: 0,
            sweep_sealed: false,
            threads,
        }
    }

    /// Workers still alive (spawned minus supervised-out deaths).
    pub fn alive(&self) -> usize {
        self.threads - self.lost
    }

    /// Coordinator: publishes `spec` as the next epoch and arms the
    /// active count with the *surviving* worker population. Requires
    /// the previous epoch to have fully quiesced (`active == 0`) — the
    /// model checker proves every interleaving satisfies this.
    pub fn publish(&mut self, spec: JobSpec) -> Wake {
        debug_assert_eq!(self.active, 0, "previous epoch fully quiesced");
        debug_assert!(
            self.resubmit.is_empty(),
            "an epoch cannot quiesce with resubmitted work unserved"
        );
        self.epoch += 1;
        self.job = Some(spec);
        self.active = self.alive();
        Wake::Work
    }

    /// Worker: decides, under the lock, whether to exit, serve a newly
    /// published epoch, or keep waiting. Shutdown wins over a pending
    /// job, matching the panic path (a panicked pool must drain its
    /// workers, not hand them more work).
    pub fn worker_poll(&self, seen_epoch: u64) -> WorkerPoll {
        if self.shutdown {
            return WorkerPoll::Shutdown;
        }
        if self.epoch > seen_epoch {
            let spec = self
                .job
                .expect("a published epoch carries a job (model-checked)");
            return WorkerPoll::Job(spec, self.epoch);
        }
        WorkerPoll::Wait
    }

    /// Worker: attempts to check out of the current epoch after merging
    /// its partial results. If a dead worker's resubmitted range is
    /// waiting, the check-out is *refused*: the caller takes the range,
    /// stays checked in, and tries again after simulating and merging
    /// it. Otherwise the worker checks out, and the last one out wakes
    /// the coordinator.
    ///
    /// Taking the range and deciding the check-out in one guarded step
    /// closes the race this queue would otherwise have: no worker can
    /// slip out between a death's resubmission and the quiesce point,
    /// so the queue is provably empty whenever the epoch quiesces.
    ///
    /// The decrement cannot underflow: each worker checks out exactly
    /// once per epoch it accepted (guarded by its seen-epoch counter)
    /// and `publish` armed `active` with the worker count — an argument
    /// the model checker verifies in every interleaving.
    pub fn check_out(&mut self) -> CheckOutcome {
        if let Some(range) = self.resubmit.pop() {
            return CheckOutcome::Redo(range);
        }
        self.active -= 1;
        if self.active == 0 {
            CheckOutcome::Out(Wake::Quiesced)
        } else {
            CheckOutcome::Out(Wake::None)
        }
    }

    /// Coordinator: polls the quiesce condition. Panic wins over an
    /// apparent quiesce so a re-raise is never missed.
    pub fn quiesce_poll(&self) -> QuiescePoll {
        if self.panicked {
            QuiescePoll::Panicked
        } else if self.active == 0 {
            QuiescePoll::Quiesced
        } else {
            QuiescePoll::Wait
        }
    }

    /// Coordinator: clears the published job after the quiesce point
    /// (reached normally or through a panic).
    pub fn retire(&mut self) {
        self.job = None;
        self.scenarios_published = 0;
        self.sweep_sealed = false;
    }

    /// Coordinator: publishes scenario 0 of a fused sweep as the next
    /// epoch. Identical to [`PoolCore::publish`] — same quiesce
    /// precondition, same arming of `active` — plus it opens the
    /// scenario queue: the epoch's index space now covers only the
    /// first scenario and [`PoolCore::extend_sweep`] will append the
    /// rest while workers drain it.
    pub fn publish_sweep(&mut self, spec: JobSpec) -> Wake {
        debug_assert_eq!(
            self.scenarios_published, 0,
            "the previous sweep must be retired first"
        );
        let wake = self.publish(spec);
        self.scenarios_published = 1;
        self.sweep_sealed = false;
        wake
    }

    /// Coordinator: appends the next scenario to the live sweep,
    /// growing the epoch's global index space to `new_hi`. This is the
    /// one transition deliberately legal with `active > 0` — it is the
    /// entire point of the fused sweep: scenario `k+1` becomes
    /// claimable while workers are still simulating scenario `k`, so
    /// the pool never passes through a per-scenario quiesce barrier.
    /// Always returns [`Wake::Work`]: a worker that drained scenario
    /// `k` may be parked at the boundary waiting for exactly this.
    pub fn extend_sweep(&mut self, new_hi: u64) -> Wake {
        debug_assert!(
            self.scenarios_published > 0 && !self.sweep_sealed,
            "extend_sweep outside an open sweep"
        );
        if let Some(job) = self.job.as_mut() {
            debug_assert!(new_hi >= job.hi, "sweep index space grows monotonically");
            job.hi = new_hi;
        }
        self.scenarios_published += 1;
        Wake::Work
    }

    /// Coordinator: marks the sweep's scenario list complete. Workers
    /// parked at the boundary must be woken so they can observe
    /// [`SweepPoll::Drained`] and proceed to check out — skipping this
    /// wake is the scenario-boundary lost wakeup
    /// [`Mutation::SkipScenarioWake`] proves the checker catches.
    pub fn seal_sweep(&mut self) -> Wake {
        debug_assert!(self.scenarios_published > 0, "seal_sweep outside a sweep");
        self.sweep_sealed = true;
        Wake::Work
    }

    /// Sweep worker: decides, under the lock, what to do after
    /// draining the cursor of scenario `served` (0-based). Either the
    /// next scenario is already published (advance), or the sweep is
    /// sealed or shutting down (fall through to check-out, where any
    /// resubmitted ranges are still served), or the worker is ahead of
    /// the coordinator and waits on [`Cv::Work`].
    ///
    /// Shutdown forces `Drained` for the same reason
    /// [`PoolCore::worker_poll`] puts shutdown first: a panicked pool
    /// must drain its workers, and the check-out path is where a
    /// serving worker accounts itself out of the epoch.
    pub fn sweep_poll(&self, served: u64) -> SweepPoll {
        if self.shutdown {
            return SweepPoll::Drained;
        }
        if served + 1 < self.scenarios_published {
            return SweepPoll::Next;
        }
        if self.sweep_sealed {
            SweepPoll::Drained
        } else {
            SweepPoll::Wait
        }
    }

    /// Coordinator (or its drop guard): requests worker shutdown.
    pub fn request_shutdown(&mut self) -> Wake {
        self.shutdown = true;
        Wake::Work
    }

    /// A worker's panic guard: latch the panic, force shutdown, and
    /// wake both sides so the coordinator re-raises at its quiesce wait
    /// instead of deadlocking.
    ///
    /// This is the *unsupervised* path, kept for total loss: when the
    /// last alive worker dies there is nobody left to resubmit work to,
    /// so the run must abort. Supervised single-worker deaths go
    /// through [`PoolCore::mark_lost`] instead.
    pub fn mark_panicked(&mut self) -> Wake {
        self.panicked = true;
        self.shutdown = true;
        Wake::Both
    }

    /// A worker's supervision guard, on that worker's death (panic
    /// unwinding through its serve loop): accounts the loss and
    /// resubmits the worker's unmerged claimed ranges so the pool keeps
    /// functioning with the survivors.
    ///
    /// * `seen_epoch` — the last epoch the dead worker *accepted*.
    /// * `serving` — `true` when death struck between accepting an
    ///   epoch and checking out of it.
    /// * `remainder` — every range the dead worker claimed since its
    ///   serve began, completed ones included: its private accumulator
    ///   died with it, so nothing it did this epoch was published.
    ///   Survivors redo them against the same per-group RNG streams,
    ///   reproducing the lost results bit-identically. Non-empty
    ///   implies `serving`.
    ///
    /// Decision table, proved over every interleaving by the model
    /// checker and unit-tested directly for the paths the model elides:
    ///
    /// * Last alive worker: degenerate to [`PoolCore::mark_panicked`] —
    ///   total loss aborts the run.
    /// * The dead worker owes the epoch a check-out if it was serving,
    ///   **or** if an epoch it never accepted is in flight (`publish`
    ///   armed `active` counting it — dying idle before accepting must
    ///   not leave the coordinator waiting forever).
    /// * While any survivor is still checked in (`active > 0`), nothing
    ///   more is needed: its own [`PoolCore::check_out`] must inspect
    ///   the queue before it can leave, so the remainder is served.
    /// * If this death's check-out would quiesce the epoch with the
    ///   queue non-empty, the epoch is *re-armed* instead: `epoch`
    ///   advances (same job) and `active` is armed with the survivor
    ///   count. Every survivor has already accepted and checked out of
    ///   the old epoch number (that is what `active == 0` means), so
    ///   each serves exactly once more and the queue drains.
    pub fn mark_lost(
        &mut self,
        seen_epoch: u64,
        serving: bool,
        remainder: Vec<(u64, u64)>,
    ) -> Wake {
        debug_assert!(
            remainder.is_empty() || serving,
            "resubmission implies serving"
        );
        self.resubmit.extend(remainder);
        self.lost += 1;
        if self.lost == self.threads {
            return self.mark_panicked();
        }
        let owes = serving || (self.job.is_some() && self.epoch > seen_epoch);
        if owes {
            self.active -= 1;
        }
        if self.active == 0 && !self.resubmit.is_empty() {
            self.epoch += 1;
            self.active = self.alive();
            return Wake::Work;
        }
        if owes && self.active == 0 {
            return Wake::Quiesced;
        }
        Wake::None
    }
}

/// Computes the half-open range claimed by a cursor step that read
/// `start` before advancing by `claim`: `None` once `start` passes
/// `hi`, otherwise `[start, min(start + claim, hi))`.
///
/// This is the single copy of the claim arithmetic: the production
/// [`crate::run`] cursor applies it to an `AtomicU64` fetch-add, the
/// model checker applies it to a virtual cursor, so "every index handed
/// out exactly once" is proved for the arithmetic both sides run.
pub fn claim_range(start: u64, hi: u64, claim: u64) -> Option<(u64, u64)> {
    debug_assert!(claim > 0, "claim batch must be positive");
    if start >= hi {
        return None;
    }
    Some((start, (start + claim).min(hi)))
}

/// Clamps the configured claim-batch size so a single epoch is never
/// starved: with `eff = min(configured, max(1, count / (8·threads)))`
/// the epoch yields `ceil(count / eff)` batches, which is at least
/// `min(threads, count)` — whenever there are at least as many groups
/// as workers, every worker can claim work. (If `count ≥ 8·threads`,
/// `eff·8·threads ≤ count`, so there are at least `8·threads` batches;
/// otherwise `eff == 1` and there are `count` batches.) The factor of
/// eight keeps a tail of small batches available to re-balance workers
/// stuck on expensive groups; it was four until `BENCH_parallel.json`
/// showed a fast first worker draining a whole 400-group epoch
/// (`balance: 0.0000`) before its peers were scheduled — when `count`
/// is near `threads · configured`, halving the clamp doubles the
/// number of late batches a waking worker can still claim.
pub fn effective_claim(configured: u64, count: u64, threads: u64) -> u64 {
    debug_assert!(configured > 0 && threads > 0);
    configured.min((count / (threads * 8)).max(1))
}

/// The synchronization substrate the pool protocol runs on.
///
/// Production uses [`StdSync`]; the model checker interprets the same
/// three operations under a virtual scheduler (each `guarded` call is
/// one atomic step, a failed poll atomically parks the caller, `wake`
/// makes parked threads runnable again). The semantics `poll_until`
/// promises — the predicate check and the transition to waiting are
/// atomic with respect to other `guarded` sections — is precisely what
/// `std::sync::Condvar::wait` provides and what the virtual scheduler
/// models; breaking that atomicity is [`Mutation::NonAtomicPark`], and
/// the checker demonstrably catches it.
pub trait SyncOps {
    /// Runs one guarded protocol transition atomically with respect to
    /// every other `guarded` and `poll_until` section.
    fn guarded<R>(&self, f: impl FnOnce(&mut PoolCore) -> R) -> R;

    /// Runs `poll` under the state lock; on `None` the lock is
    /// atomically released and the caller sleeps on `cv` until a wake,
    /// then retries. Returns the first `Some`.
    fn poll_until<R>(&self, cv: Cv, poll: impl FnMut(&mut PoolCore) -> Option<R>) -> R;

    /// Delivers the wakeups a guarded transition requested.
    fn wake(&self, wake: Wake);
}

/// Production [`SyncOps`]: one mutex over [`PoolCore`] plus the two
/// condition variables. Lock poisoning is deliberately ignored
/// (`PoisonError::into_inner`): every guarded section leaves the state
/// consistent on its own, and the panic path must be able to make
/// progress through the same lock it poisoned.
#[derive(Debug)]
pub struct StdSync {
    state: Mutex<PoolCore>,
    work: Condvar,
    quiesced: Condvar,
}

impl StdSync {
    /// Fresh production sync state for `threads` workers.
    pub fn new(threads: usize) -> Self {
        StdSync {
            state: Mutex::new(PoolCore::new(threads)),
            work: Condvar::new(),
            quiesced: Condvar::new(),
        }
    }

    fn cv(&self, cv: Cv) -> &Condvar {
        match cv {
            Cv::Work => &self.work,
            Cv::Quiesced => &self.quiesced,
        }
    }
}

impl SyncOps for StdSync {
    fn guarded<R>(&self, f: impl FnOnce(&mut PoolCore) -> R) -> R {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut st)
    }

    fn poll_until<R>(&self, cv: Cv, mut poll: impl FnMut(&mut PoolCore) -> Option<R>) -> R {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = poll(&mut st) {
                return r;
            }
            st = self.cv(cv).wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn wake(&self, wake: Wake) {
        match wake {
            Wake::None => {}
            Wake::Work => self.work.notify_all(),
            Wake::Quiesced => self.quiesced.notify_all(),
            Wake::Both => {
                self.work.notify_all();
                self.quiesced.notify_all();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Model checker
// ---------------------------------------------------------------------

/// Deliberate protocol breakages, used to prove the checker can detect
/// the bug classes it claims to rule out. [`check`] must report a
/// violation for every non-`None` mutation (the test suite asserts
/// this); production code never runs mutated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The faithful protocol.
    None,
    /// The coordinator publishes an epoch but never wakes the workers:
    /// the classic dropped-notify lost wakeup.
    SkipPublishWake,
    /// The last worker checks out but never wakes the coordinator.
    SkipCheckoutWake,
    /// A dying worker accounts its loss but wakes nobody — survivors
    /// parked on [`Cv::Work`] never learn the epoch was re-armed.
    SkipPanicWake,
    /// Workers check their wait predicate and *then* park in a separate
    /// step (the check-then-sleep race `Condvar::wait`'s atomic
    /// release-and-wait exists to prevent).
    NonAtomicPark,
    /// `publish` arms `active` with one worker too few, so the epoch
    /// can quiesce before the last worker has merged its results.
    UnderCountActive,
    /// A dying worker's supervision guard reports the death but
    /// discards its unmerged claimed ranges instead of resubmitting
    /// them — the lost-remainder bug the watermark invariant exists to
    /// catch.
    DropRemainder,
    /// The coordinator appends the next sweep scenario (or seals the
    /// sweep) but never delivers the [`Wake::Work`] the transition
    /// requested: a worker parked at the scenario boundary sleeps
    /// forever — the cross-scenario lost wakeup.
    SkipScenarioWake,
}

/// A bounded pool schedule for the checker to exhaust.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Worker count (the coordinator is an additional virtual thread).
    pub workers: usize,
    /// Driver batches, as `[lo, hi)` group-index ranges. The standard
    /// scenarios use contiguous prefixes starting at 0, matching the
    /// drivers in [`crate::run`]; overlapping ranges are accepted and
    /// are caught as double-claim violations (a seeded-violation test).
    /// Ignored when `sweep` is non-empty.
    pub epochs: Vec<(u64, u64)>,
    /// Non-empty selects fused-sweep mode: one epoch whose global
    /// index space is the concatenation of these per-scenario group
    /// counts, published incrementally (scenario `k+1` appended via
    /// [`PoolCore::extend_sweep`] while workers drain scenario `k`,
    /// then sealed). Each scenario gets its own cursor with its own
    /// [`effective_claim`].
    pub sweep: Vec<u64>,
    /// Configured claim size; each epoch applies [`effective_claim`].
    pub claim: u64,
    /// If `Some(i)`, simulating group index `i` panics (after the
    /// indices claimed before it in the same batch completed). One-shot
    /// by default: the first worker to reach the index dies and the
    /// fault disarms, so its resubmitted range succeeds on a survivor.
    pub panic_at: Option<u64>,
    /// Make `panic_at` persistent: *every* worker that simulates the
    /// index dies, so supervision must escalate to a total-loss abort.
    pub sticky: bool,
    /// Allow spurious wakeups: any parked thread may wake at any time.
    /// The protocol must be correct under both condvar contracts.
    pub spurious: bool,
    /// Protocol breakage to inject (see [`Mutation`]).
    pub mutation: Mutation,
}

impl Scenario {
    /// A faithful scenario over contiguous prefix epochs.
    pub fn new(workers: usize, epochs: Vec<(u64, u64)>, claim: u64) -> Self {
        Scenario {
            workers,
            epochs,
            sweep: Vec::new(),
            claim,
            panic_at: None,
            sticky: false,
            spurious: false,
            mutation: Mutation::None,
        }
    }

    /// A faithful fused-sweep scenario: one epoch over the
    /// concatenation of `counts`, published one scenario at a time.
    pub fn sweep(workers: usize, counts: Vec<u64>, claim: u64) -> Self {
        Scenario {
            workers,
            epochs: Vec::new(),
            sweep: counts,
            claim,
            panic_at: None,
            sticky: false,
            spurious: false,
            mutation: Mutation::None,
        }
    }

    fn sweep_mode(&self) -> bool {
        !self.sweep.is_empty()
    }

    /// Global `[lo, hi)` index range of sweep scenario `k`.
    fn sweep_range(&self, k: usize) -> (u64, u64) {
        let lo: u64 = self.sweep[..k].iter().sum();
        (lo, lo + self.sweep[k])
    }

    /// Total group count across all epochs (assumes prefix epochs).
    fn total(&self) -> u64 {
        if self.sweep_mode() {
            self.sweep.iter().sum()
        } else {
            self.epochs.last().map_or(0, |&(_, hi)| hi)
        }
    }

    /// Whether the configured panic fault can actually fire.
    fn poison_reachable(&self) -> bool {
        self.panic_at.is_some_and(|i| i < self.total())
    }

    /// Whether the run is expected to abort (re-raise a panic): the
    /// fault kills every worker, either because it never disarms or
    /// because there is no survivor to resubmit to.
    fn expect_abort(&self) -> bool {
        self.poison_reachable() && (self.sticky || self.workers == 1)
    }
}

/// What the exhaustive search found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelReport {
    /// Distinct states explored (after pruning on exact state
    /// encodings).
    pub states: u64,
    /// Distinct complete schedules through the pruned state graph
    /// (path count, saturating at `u64::MAX`).
    pub interleavings: u64,
    /// Longest scheduling-step sequence from the initial state to a
    /// terminal state.
    pub max_depth: usize,
    /// The first invariant violation found, if any. `None` means every
    /// reachable interleaving satisfies every invariant.
    pub violation: Option<String>,
}

/// Virtual-thread program counter for one worker. Each variant's step
/// mirrors one synchronization action of the production worker loop in
/// [`crate::pool`] (see DESIGN.md §15 for the line-by-line map).
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerPc {
    /// About to run the idle poll (one `guarded` step; parks
    /// atomically on `Wait` — except under `NonAtomicPark`).
    Idle,
    /// `NonAtomicPark` only: decided to park, not yet parked.
    PrePark,
    /// Parked on [`Cv::Work`].
    ParkedWork,
    /// About to fetch-add on the epoch cursor.
    Claim,
    /// Simulating the claimed range `[cur, end)` (one step; panics at
    /// `panic_at` if it lies in the range and the fault is armed).
    Simulate { cur: u64, end: u64 },
    /// About to run the guarded merge-and-check-out step (which may
    /// hand back a resubmitted range instead of checking out).
    CheckOut,
    /// Sweep mode: drained the current scenario's cursor (partial
    /// already merged); about to run the guarded
    /// [`PoolCore::sweep_poll`] (parks atomically on `Wait`).
    SweepWait,
    /// Sweep mode: parked on [`Cv::Work`] at a scenario boundary,
    /// waiting for the coordinator to append or seal.
    ParkedSweep,
    /// Check-out said this worker was last: deliver the quiesce wake.
    WakeQuiesced,
    /// Supervision guard, dying: about to run the guarded
    /// [`PoolCore::mark_lost`] with the unmerged claimed ranges.
    MarkLost,
    /// Supervision guard, dying: about to deliver the wake `mark_lost`
    /// requested.
    WakeDeath { wake: Wake },
    /// Serve loop exited (normally or by death).
    Exited,
}

/// Virtual-thread program counter for the coordinator, covering the
/// driver loop over `scenario.epochs` plus the shutdown/join tail.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CoordPc {
    /// About to install the epoch data and run the guarded publish
    /// (sweep mode: installs scenario 0's cursor and runs
    /// [`PoolCore::publish_sweep`]).
    Publish,
    /// About to deliver the publish wake.
    WakeWorkers,
    /// Sweep mode: about to install scenario `k`'s cursor and run the
    /// guarded [`PoolCore::extend_sweep`] — while workers are active.
    PublishScenario { k: usize },
    /// Sweep mode: about to deliver the extend wake for scenario `k`.
    WakeScenario { k: usize },
    /// Sweep mode: about to run the guarded [`PoolCore::seal_sweep`].
    Seal,
    /// Sweep mode: about to deliver the seal wake.
    WakeSeal,
    /// About to run the quiesce poll (parks atomically on `Wait`).
    Await,
    /// Parked on [`Cv::Quiesced`].
    ParkedQuiesced,
    /// About to run the guarded retire; `panicked: true` re-raises.
    Retire { panicked: bool },
    /// About to run the guarded shutdown request (drop guard).
    Shutdown { panicked: bool },
    /// About to deliver the shutdown wake.
    WakeShutdown { panicked: bool },
    /// Joining worker threads (runnable once every worker has exited).
    Join { panicked: bool },
    /// Run complete.
    Done { panicked: bool },
}

/// One reachable state of the virtual pool.
#[derive(Debug, Clone)]
struct ModelState {
    core: PoolCore,
    /// Virtual claim cursor of the current epoch: `(next, hi, claim)`.
    cursor: Option<(u64, u64, u64)>,
    /// Sweep mode: one virtual cursor per *published* scenario, each
    /// `(next, hi, claim)` over its global sub-range. Grows as the
    /// coordinator appends scenarios.
    sweep_cursors: Vec<(u64, u64, u64)>,
    /// Whether `scenario.panic_at` can still fire (one-shot faults
    /// disarm at the first death; sticky faults never do).
    panic_armed: bool,
    /// Index into `scenario.epochs` of the next epoch to publish.
    epoch_idx: usize,
    coord: CoordPc,
    workers: Vec<WorkerState>,
    /// Sorted global set of *merged* group indices — the epoch
    /// accumulator's coverage, updated at each worker's check-out.
    simulated: Vec<u64>,
}

#[derive(Debug, Clone)]
struct WorkerState {
    pc: WorkerPc,
    seen_epoch: u64,
    /// Sweep mode: index of the scenario this worker is draining,
    /// reset to 0 each time it accepts an epoch (a re-armed sweep
    /// epoch makes survivors skate over the exhausted cursors to the
    /// redo queue).
    scenario: u64,
    /// Ranges claimed since this worker's current serve began, none of
    /// them merged yet (the production supervision guard's pending
    /// list). Resubmitted wholesale if the worker dies; cleared at the
    /// merge.
    pending: Vec<(u64, u64)>,
    /// Indices this worker simulated but has not merged (its private
    /// accumulator). Moved into `ModelState::simulated` at check-out;
    /// discarded if the worker dies — that is exactly why `pending`
    /// must resubmit even completed ranges.
    local: Vec<u64>,
}

impl ModelState {
    fn initial(scenario: &Scenario) -> Self {
        ModelState {
            core: PoolCore::new(scenario.workers),
            cursor: None,
            sweep_cursors: Vec::new(),
            panic_armed: scenario.panic_at.is_some(),
            epoch_idx: 0,
            coord: CoordPc::Publish,
            workers: vec![
                WorkerState {
                    pc: WorkerPc::Idle,
                    seen_epoch: 0,
                    scenario: 0,
                    pending: Vec::new(),
                    local: Vec::new(),
                };
                scenario.workers
            ],
            simulated: Vec::new(),
        }
    }

    /// Exact canonical encoding, used as the pruning key. Everything
    /// that can influence future behavior or a future invariant check
    /// is included, so pruning is sound by construction.
    fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        let push = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push(out, self.core.epoch);
        push(out, self.core.active as u64);
        push(out, self.core.lost as u64);
        out.push(u8::from(self.core.shutdown));
        out.push(u8::from(self.core.panicked));
        out.push(u8::from(self.panic_armed));
        push(out, self.core.scenarios_published);
        out.push(u8::from(self.core.sweep_sealed));
        push(out, self.core.resubmit.len() as u64);
        for &(lo, hi) in &self.core.resubmit {
            push(out, lo);
            push(out, hi);
        }
        match self.core.job {
            None => out.push(0),
            Some(spec) => {
                out.push(1);
                push(out, spec.lo);
                push(out, spec.hi);
                push(out, spec.claim);
                out.push(u8::from(spec.collect));
            }
        }
        match self.cursor {
            None => out.push(0),
            Some((next, hi, claim)) => {
                out.push(1);
                push(out, next);
                push(out, hi);
                push(out, claim);
            }
        }
        push(out, self.sweep_cursors.len() as u64);
        for &(next, hi, claim) in &self.sweep_cursors {
            push(out, next);
            push(out, hi);
            push(out, claim);
        }
        push(out, self.epoch_idx as u64);
        encode_coord(&self.coord, out);
        for w in &self.workers {
            push(out, w.seen_epoch);
            push(out, w.scenario);
            encode_worker(&w.pc, out);
            push(out, w.pending.len() as u64);
            for &(lo, hi) in &w.pending {
                push(out, lo);
                push(out, hi);
            }
            push(out, w.local.len() as u64);
            for &i in &w.local {
                push(out, i);
            }
        }
        push(out, self.simulated.len() as u64);
        for &i in &self.simulated {
            push(out, i);
        }
    }
}

fn encode_coord(pc: &CoordPc, out: &mut Vec<u8>) {
    let (tag, flag, k) = match pc {
        CoordPc::Publish => (0u8, false, 0usize),
        CoordPc::WakeWorkers => (1, false, 0),
        CoordPc::Await => (2, false, 0),
        CoordPc::ParkedQuiesced => (3, false, 0),
        CoordPc::Retire { panicked } => (4, *panicked, 0),
        CoordPc::Shutdown { panicked } => (5, *panicked, 0),
        CoordPc::WakeShutdown { panicked } => (6, *panicked, 0),
        CoordPc::Join { panicked } => (7, *panicked, 0),
        CoordPc::Done { panicked } => (8, *panicked, 0),
        CoordPc::PublishScenario { k } => (9, false, *k),
        CoordPc::WakeScenario { k } => (10, false, *k),
        CoordPc::Seal => (11, false, 0),
        CoordPc::WakeSeal => (12, false, 0),
    };
    out.push(tag);
    out.push(u8::from(flag));
    out.extend_from_slice(&(k as u64).to_le_bytes());
}

fn encode_worker(pc: &WorkerPc, out: &mut Vec<u8>) {
    match pc {
        WorkerPc::Idle => out.push(0),
        WorkerPc::PrePark => out.push(1),
        WorkerPc::ParkedWork => out.push(2),
        WorkerPc::Claim => out.push(3),
        WorkerPc::Simulate { cur, end } => {
            out.push(4);
            out.extend_from_slice(&cur.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
        WorkerPc::CheckOut => out.push(5),
        WorkerPc::WakeQuiesced => out.push(6),
        WorkerPc::MarkLost => out.push(7),
        WorkerPc::Exited => out.push(9),
        WorkerPc::SweepWait => out.push(10),
        WorkerPc::ParkedSweep => out.push(11),
        WorkerPc::WakeDeath { wake } => {
            out.push(8);
            out.push(match wake {
                Wake::None => 0,
                Wake::Work => 1,
                Wake::Quiesced => 2,
                Wake::Both => 3,
            });
        }
    }
}

/// A scheduler decision: which virtual thread steps next (or a spurious
/// wakeup of a parked thread, when the scenario allows them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Coordinator,
    Worker(usize),
    SpuriousWorker(usize),
    SpuriousCoordinator,
}

/// Exhaustively explores every interleaving of `scenario` and checks
/// the pool invariants in each reachable state.
///
/// The search is a depth-first traversal of the scheduling tree with
/// memoization on exact state encodings: two schedules that reach the
/// same state share their entire future, so each distinct state is
/// expanded once. `interleavings` counts complete schedules through
/// the resulting graph (the number a pruning-free search would
/// enumerate), saturating at `u64::MAX`.
pub fn check(scenario: &Scenario) -> ModelReport {
    let mut explorer = Explorer {
        scenario,
        memo: BTreeMap::new(),
        max_depth: 0,
        violation: None,
        key_buf: Vec::new(),
    };
    let interleavings = explorer.explore(&ModelState::initial(scenario), 0);
    ModelReport {
        states: explorer.memo.len() as u64,
        interleavings,
        max_depth: explorer.max_depth,
        violation: explorer.violation,
    }
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    /// Encoded state → number of complete schedules reachable from it.
    memo: BTreeMap<Vec<u8>, u64>,
    max_depth: usize,
    violation: Option<String>,
    key_buf: Vec<u8>,
}

impl Explorer<'_> {
    /// Returns the (saturating) number of schedules from `state`.
    fn explore(&mut self, state: &ModelState, depth: usize) -> u64 {
        if self.violation.is_some() {
            return 0;
        }
        self.max_depth = self.max_depth.max(depth);
        state.encode(&mut self.key_buf);
        if let Some(&paths) = self.memo.get(&self.key_buf) {
            return paths;
        }
        // Mark in-progress with 0 paths; the protocol has no cycles
        // back to an unfinished ancestor (epochs and the simulated set
        // grow monotonically along every edge that returns to a parked
        // or idle pc), so this is only ever read back for genuinely
        // explored states.
        let key = self.key_buf.clone();
        self.memo.insert(key.clone(), 0);

        let decisions = self.runnable(state);
        let paths = if decisions.is_empty() {
            match self.check_terminal(state) {
                Ok(()) => 1,
                Err(v) => {
                    self.violation.get_or_insert(v);
                    0
                }
            }
        } else {
            let mut total: u64 = 0;
            for d in decisions {
                let mut next = state.clone();
                if let Err(v) = self.apply(&mut next, d) {
                    self.violation.get_or_insert(v);
                    return 0;
                }
                total = total.saturating_add(self.explore(&next, depth + 1));
                if self.violation.is_some() {
                    return 0;
                }
            }
            total
        };
        self.memo.insert(key, paths);
        paths
    }

    fn runnable(&self, state: &ModelState) -> Vec<Decision> {
        let mut out = Vec::new();
        match &state.coord {
            CoordPc::ParkedQuiesced => {
                if self.scenario.spurious {
                    out.push(Decision::SpuriousCoordinator);
                }
            }
            CoordPc::Join { .. } => {
                if state.workers.iter().all(|w| w.pc == WorkerPc::Exited) {
                    out.push(Decision::Coordinator);
                }
            }
            CoordPc::Done { .. } => {}
            _ => out.push(Decision::Coordinator),
        }
        for (i, w) in state.workers.iter().enumerate() {
            match w.pc {
                WorkerPc::ParkedWork | WorkerPc::ParkedSweep => {
                    if self.scenario.spurious {
                        out.push(Decision::SpuriousWorker(i));
                    }
                }
                WorkerPc::Exited => {}
                _ => out.push(Decision::Worker(i)),
            }
        }
        out
    }

    /// Applies one scheduling decision, checking step-local invariants.
    fn apply(&self, state: &mut ModelState, decision: Decision) -> Result<(), String> {
        match decision {
            Decision::SpuriousWorker(i) => {
                // A spurious wake returns the worker to the poll it
                // parked from; the predicate re-check is what makes
                // spurious wakeups harmless.
                state.workers[i].pc = if state.workers[i].pc == WorkerPc::ParkedSweep {
                    WorkerPc::SweepWait
                } else {
                    WorkerPc::Idle
                };
                Ok(())
            }
            Decision::SpuriousCoordinator => {
                state.coord = CoordPc::Await;
                Ok(())
            }
            Decision::Coordinator => self.step_coordinator(state),
            Decision::Worker(i) => self.step_worker(state, i),
        }
    }

    fn deliver(&self, state: &mut ModelState, wake: Wake) {
        let (work, quiesced) = match wake {
            Wake::None => (false, false),
            Wake::Work => (true, false),
            Wake::Quiesced => (false, true),
            Wake::Both => (true, true),
        };
        if work {
            for w in &mut state.workers {
                if w.pc == WorkerPc::ParkedWork {
                    w.pc = WorkerPc::Idle;
                } else if w.pc == WorkerPc::ParkedSweep {
                    w.pc = WorkerPc::SweepWait;
                }
            }
        }
        if quiesced && state.coord == CoordPc::ParkedQuiesced {
            state.coord = CoordPc::Await;
        }
    }

    fn step_coordinator(&self, state: &mut ModelState) -> Result<(), String> {
        match state.coord.clone() {
            CoordPc::Publish => {
                if state.core.active != 0 {
                    return Err(format!(
                        "publish with {} workers still active in the previous epoch",
                        state.core.active
                    ));
                }
                let (lo, hi) = if self.scenario.sweep_mode() {
                    self.scenario.sweep_range(0)
                } else {
                    self.scenario.epochs[state.epoch_idx]
                };
                let claim =
                    effective_claim(self.scenario.claim, hi - lo, self.scenario.workers as u64);
                let spec = JobSpec {
                    lo,
                    hi,
                    claim,
                    collect: false,
                };
                // Production installs the cursor and accumulators
                // (under the data mutex) before the guarded publish;
                // folded into this step because workers cannot observe
                // the data until the publish makes the epoch visible.
                let wake = if self.scenario.sweep_mode() {
                    state.sweep_cursors = vec![(lo, hi, claim)];
                    state.core.publish_sweep(spec)
                } else {
                    state.cursor = Some((lo, hi, claim));
                    state.core.publish(spec)
                };
                if self.scenario.mutation == Mutation::UnderCountActive {
                    state.core.active = state.core.active.saturating_sub(1);
                }
                debug_assert_eq!(wake, Wake::Work);
                state.coord = CoordPc::WakeWorkers;
                Ok(())
            }
            CoordPc::WakeWorkers => {
                if self.scenario.mutation != Mutation::SkipPublishWake {
                    self.deliver(state, Wake::Work);
                }
                state.coord = if self.scenario.sweep_mode() {
                    if self.scenario.sweep.len() > 1 {
                        CoordPc::PublishScenario { k: 1 }
                    } else {
                        CoordPc::Seal
                    }
                } else {
                    CoordPc::Await
                };
                Ok(())
            }
            CoordPc::PublishScenario { k } => {
                // The fused sweep's defining transition: appended while
                // workers are active — no quiesce precondition.
                let (lo, hi) = self.scenario.sweep_range(k);
                let claim =
                    effective_claim(self.scenario.claim, hi - lo, self.scenario.workers as u64);
                state.sweep_cursors.push((lo, hi, claim));
                let wake = state.core.extend_sweep(hi);
                debug_assert_eq!(wake, Wake::Work);
                state.coord = CoordPc::WakeScenario { k };
                Ok(())
            }
            CoordPc::WakeScenario { k } => {
                if self.scenario.mutation != Mutation::SkipScenarioWake {
                    self.deliver(state, Wake::Work);
                }
                state.coord = if k + 1 < self.scenario.sweep.len() {
                    CoordPc::PublishScenario { k: k + 1 }
                } else {
                    CoordPc::Seal
                };
                Ok(())
            }
            CoordPc::Seal => {
                let wake = state.core.seal_sweep();
                debug_assert_eq!(wake, Wake::Work);
                state.coord = CoordPc::WakeSeal;
                Ok(())
            }
            CoordPc::WakeSeal => {
                if self.scenario.mutation != Mutation::SkipScenarioWake {
                    self.deliver(state, Wake::Work);
                }
                state.coord = CoordPc::Await;
                Ok(())
            }
            CoordPc::Await => {
                match state.core.quiesce_poll() {
                    QuiescePoll::Wait => state.coord = CoordPc::ParkedQuiesced,
                    QuiescePoll::Quiesced => state.coord = CoordPc::Retire { panicked: false },
                    QuiescePoll::Panicked => state.coord = CoordPc::Retire { panicked: true },
                }
                Ok(())
            }
            CoordPc::Retire { panicked } => {
                state.core.retire();
                if panicked {
                    // Re-raise: unwind into the drop guard.
                    state.coord = CoordPc::Shutdown { panicked: true };
                    return Ok(());
                }
                // Quiesce-point watermark: the simulated set must be
                // exactly the prefix [0, hi) of this epoch (in sweep
                // mode, of the whole fused index space — a per-scenario
                // shortfall shows up as a hole in the prefix).
                let hi = if self.scenario.sweep_mode() {
                    self.scenario.total()
                } else {
                    self.scenario.epochs[state.epoch_idx].1
                };
                let expected: Vec<u64> = (0..hi).collect();
                if state.simulated != expected {
                    return Err(format!(
                        "watermark broken at quiesce of epoch {}: simulated {:?}, expected [0, {})",
                        state.core.epoch, state.simulated, hi
                    ));
                }
                state.epoch_idx += 1;
                let done =
                    self.scenario.sweep_mode() || state.epoch_idx == self.scenario.epochs.len();
                state.coord = if done {
                    CoordPc::Shutdown { panicked: false }
                } else {
                    CoordPc::Publish
                };
                Ok(())
            }
            CoordPc::Shutdown { panicked } => {
                let wake = state.core.request_shutdown();
                debug_assert_eq!(wake, Wake::Work);
                state.coord = CoordPc::WakeShutdown { panicked };
                Ok(())
            }
            CoordPc::WakeShutdown { panicked } => {
                self.deliver(state, Wake::Work);
                state.coord = CoordPc::Join { panicked };
                Ok(())
            }
            CoordPc::Join { panicked } => {
                state.coord = CoordPc::Done { panicked };
                Ok(())
            }
            CoordPc::ParkedQuiesced | CoordPc::Done { .. } => {
                Err("scheduler stepped an unrunnable coordinator".into())
            }
        }
    }

    fn step_worker(&self, state: &mut ModelState, i: usize) -> Result<(), String> {
        let pc = state.workers[i].pc.clone();
        match pc {
            WorkerPc::Idle => {
                let seen = state.workers[i].seen_epoch;
                // Shared-code precondition: `worker_poll` asserts that a
                // visible new epoch carries a job. A broken protocol can
                // retire the job while a worker is still unserved (e.g.
                // `UnderCountActive` quiesces early); surface that as a
                // violation rather than tripping the assert.
                if !state.core.shutdown && state.core.epoch > seen && state.core.job.is_none() {
                    return Err(format!(
                        "epoch {} retired before worker {i} was served (early quiesce)",
                        state.core.epoch
                    ));
                }
                match state.core.worker_poll(seen) {
                    WorkerPoll::Shutdown => state.workers[i].pc = WorkerPc::Exited,
                    WorkerPoll::Job(_, epoch) => {
                        state.workers[i].seen_epoch = epoch;
                        state.workers[i].scenario = 0;
                        state.workers[i].pc = WorkerPc::Claim;
                    }
                    WorkerPoll::Wait => {
                        state.workers[i].pc = if self.scenario.mutation == Mutation::NonAtomicPark {
                            WorkerPc::PrePark
                        } else {
                            WorkerPc::ParkedWork
                        };
                    }
                }
                Ok(())
            }
            WorkerPc::PrePark => {
                // The lost-wakeup race: parks regardless of what was
                // published since the predicate check.
                state.workers[i].pc = WorkerPc::ParkedWork;
                Ok(())
            }
            WorkerPc::Claim => {
                if self.scenario.sweep_mode() {
                    let s = state.workers[i].scenario as usize;
                    let &(next, hi, claim) = state
                        .sweep_cursors
                        .get(s)
                        .ok_or("worker claiming an unpublished sweep scenario")?;
                    state.sweep_cursors[s] = (next + claim, hi, claim);
                    match claim_range(next, hi, claim) {
                        Some((lo, end)) => {
                            state.workers[i].pending.push((lo, end));
                            state.workers[i].pc = WorkerPc::Simulate { cur: lo, end };
                        }
                        // Scenario drained: ask the queue what's next
                        // instead of checking out of the epoch.
                        None => state.workers[i].pc = WorkerPc::SweepWait,
                    }
                    return Ok(());
                }
                let (next, hi, claim) = state
                    .cursor
                    .ok_or("worker claiming with no cursor installed")?;
                state.cursor = Some((next + claim, hi, claim));
                match claim_range(next, hi, claim) {
                    Some((lo, end)) => {
                        state.workers[i].pending.push((lo, end));
                        state.workers[i].pc = WorkerPc::Simulate { cur: lo, end };
                    }
                    None => state.workers[i].pc = WorkerPc::CheckOut,
                }
                Ok(())
            }
            WorkerPc::SweepWait => {
                // Production merges the drained scenario's partial
                // *before* this guarded poll (the model's merge stays
                // at check-out: merges commute, so coverage — which is
                // what the invariants track — is unaffected).
                match state.core.sweep_poll(state.workers[i].scenario) {
                    SweepPoll::Next => {
                        state.workers[i].scenario += 1;
                        state.workers[i].pc = WorkerPc::Claim;
                    }
                    SweepPoll::Drained => state.workers[i].pc = WorkerPc::CheckOut,
                    SweepPoll::Wait => state.workers[i].pc = WorkerPc::ParkedSweep,
                }
                Ok(())
            }
            WorkerPc::Simulate { cur, end } => {
                for idx in cur..end {
                    if state.panic_armed && self.scenario.panic_at == Some(idx) {
                        if !self.scenario.sticky {
                            state.panic_armed = false;
                        }
                        // The worker's private accumulator dies with
                        // it; its pending ranges carry the work onward.
                        state.workers[i].local.clear();
                        state.workers[i].pc = WorkerPc::MarkLost;
                        return Ok(());
                    }
                    let local = &mut state.workers[i].local;
                    match local.binary_search(&idx) {
                        Ok(_) => {
                            return Err(format!(
                                "group index {idx} simulated twice (double-claimed batch)"
                            ));
                        }
                        Err(pos) => local.insert(pos, idx),
                    }
                }
                state.workers[i].pc = WorkerPc::Claim;
                Ok(())
            }
            WorkerPc::CheckOut => {
                // Production merges this worker's partial into the
                // epoch accumulator and clears the supervision guard's
                // pending list (data mutex) immediately before the
                // guarded check-out; merges are exact-integer state and
                // commute, so the model moves the worker's index set
                // into the global one. Double merges surface here, at
                // merge time, because a dead worker's *unmerged* copy
                // is legitimately re-simulated by a survivor.
                let local = std::mem::take(&mut state.workers[i].local);
                for idx in local {
                    match state.simulated.binary_search(&idx) {
                        Ok(_) => {
                            return Err(format!(
                                "group index {idx} simulated twice (double-claimed batch)"
                            ));
                        }
                        Err(pos) => state.simulated.insert(pos, idx),
                    }
                }
                state.workers[i].pending.clear();
                if state.core.resubmit.is_empty() && state.core.active == 0 {
                    return Err("check-out with active == 0 (double check-out)".into());
                }
                match state.core.check_out() {
                    CheckOutcome::Redo((lo, end)) => {
                        state.workers[i].pending.push((lo, end));
                        state.workers[i].pc = WorkerPc::Simulate { cur: lo, end };
                    }
                    CheckOutcome::Out(wake) => {
                        state.workers[i].pc = match wake {
                            Wake::Quiesced => WorkerPc::WakeQuiesced,
                            _ => WorkerPc::Idle,
                        };
                    }
                }
                Ok(())
            }
            WorkerPc::WakeQuiesced => {
                if self.scenario.mutation != Mutation::SkipCheckoutWake {
                    self.deliver(state, Wake::Quiesced);
                }
                state.workers[i].pc = WorkerPc::Idle;
                Ok(())
            }
            WorkerPc::MarkLost => {
                // Model deaths always strike mid-simulation, so the
                // worker is serving with a non-empty pending list. The
                // idle-death and empty-remainder rows of `mark_lost`'s
                // decision table are covered by direct unit tests.
                let remainder = if self.scenario.mutation == Mutation::DropRemainder {
                    state.workers[i].pending.clear();
                    Vec::new()
                } else {
                    std::mem::take(&mut state.workers[i].pending)
                };
                let seen = state.workers[i].seen_epoch;
                let wake = state.core.mark_lost(seen, true, remainder);
                state.workers[i].pc = WorkerPc::WakeDeath { wake };
                Ok(())
            }
            WorkerPc::WakeDeath { wake } => {
                if self.scenario.mutation != Mutation::SkipPanicWake {
                    self.deliver(state, wake);
                }
                state.workers[i].pc = WorkerPc::Exited;
                Ok(())
            }
            WorkerPc::ParkedWork | WorkerPc::ParkedSweep | WorkerPc::Exited => {
                Err("scheduler stepped an unrunnable worker".into())
            }
        }
    }

    /// A state with no runnable thread must be the clean (or cleanly
    /// panicked) end of the run; anything else is a deadlock — some
    /// thread is parked with nobody left to wake it (a lost wakeup) or
    /// blocked on a join that can never complete.
    fn check_terminal(&self, state: &ModelState) -> Result<(), String> {
        let all_exited = state.workers.iter().all(|w| w.pc == WorkerPc::Exited);
        match &state.coord {
            CoordPc::Done { panicked } => {
                if !all_exited {
                    return Err("coordinator finished with workers still alive".into());
                }
                let expect_abort = self.scenario.expect_abort();
                if *panicked != expect_abort {
                    return Err(if expect_abort {
                        format!(
                            "total-loss scenario completed without re-raising the panic \
                             (lost {} of {} workers)",
                            state.core.lost, self.scenario.workers
                        )
                    } else {
                        "panic re-raised in a scenario supervision should survive".into()
                    });
                }
                if expect_abort {
                    return Ok(());
                }
                let expect_lost = usize::from(self.scenario.poison_reachable());
                if state.core.lost != expect_lost {
                    return Err(format!(
                        "run completed with {} lost workers, expected {expect_lost}",
                        state.core.lost
                    ));
                }
                let expected: Vec<u64> = (0..self.scenario.total()).collect();
                if state.simulated == expected {
                    Ok(())
                } else {
                    Err(format!(
                        "run completed with simulated set {:?}, expected [0, {})",
                        state.simulated,
                        self.scenario.total()
                    ))
                }
            }
            other => Err(format!(
                "deadlock: no runnable thread (coordinator at {other:?}, workers {:?})",
                state
                    .workers
                    .iter()
                    .map(|w| format!("{:?}", w.pc))
                    .collect::<Vec<_>>()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_claim_is_clamped_and_positive() {
        // Small ranges fall back to single-group batches.
        assert_eq!(effective_claim(64, 0, 4), 1);
        assert_eq!(effective_claim(64, 10, 4), 1);
        // Large ranges keep the configured size.
        assert_eq!(effective_claim(64, 1_000_000, 4), 64);
        // In between: the clamp, not the configured value.
        assert_eq!(effective_claim(64, 100, 4), 3);
        // A configured claim of one is never inflated.
        assert_eq!(effective_claim(1, 1_000_000, 4), 1);
    }

    #[test]
    fn small_runs_yield_enough_batches_to_balance() {
        // Regression for the `balance: 0.0000` rows in
        // BENCH_parallel.json: a 400-group run under `claim_batch=64`
        // used to yield so few batches that the first worker could
        // drain the whole epoch before its peers were scheduled. The
        // clamp must now leave at least eight batches per worker
        // whenever the run is large enough to support them.
        for threads in [2u64, 4, 8] {
            for count in [400u64, 800, 1_000] {
                let eff = effective_claim(64, count, threads);
                let batches = count.div_ceil(eff);
                assert!(
                    batches >= 8 * threads.min(count / 8),
                    "count={count} threads={threads} eff={eff} batches={batches}"
                );
            }
        }
        // The concrete bench shape: 400 groups, 2 workers, claim 64.
        assert_eq!(effective_claim(64, 400, 2), 25);
        assert!(400u64.div_ceil(25) >= 16);
    }

    #[test]
    fn every_worker_can_claim_a_batch_when_groups_cover_threads() {
        // Starvation fix: whenever `count >= threads`, the epoch must
        // yield at least `threads` batches so no worker sits idle on
        // an already-drained cursor while whole batches remain.
        for threads in 1..=16u64 {
            for count in [
                threads,
                threads + 1,
                2 * threads,
                4 * threads,
                4 * threads + 3,
                100,
                1_000,
                65_536,
            ] {
                if count < threads {
                    continue;
                }
                for configured in [1, 2, 7, 64, 1_000, u64::MAX / 2] {
                    let eff = effective_claim(configured, count, threads);
                    assert!(eff > 0);
                    assert!(eff <= configured);
                    let batches = count.div_ceil(eff);
                    assert!(
                        batches >= threads.min(count),
                        "configured={configured} count={count} threads={threads} \
                         eff={eff} batches={batches}"
                    );
                }
            }
        }
    }

    #[test]
    fn claim_range_partitions_the_index_space() {
        let mut next = 0u64;
        let mut seen = Vec::new();
        while let Some((lo, hi)) = claim_range(next, 103, 10) {
            next += 10;
            seen.extend(lo..hi);
        }
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
        // Overshooting cursors stay exhausted.
        assert_eq!(claim_range(110, 103, 10), None);
    }

    #[test]
    fn core_transitions_follow_the_handshake() {
        let mut core = PoolCore::new(2);
        assert_eq!(core.worker_poll(0), WorkerPoll::Wait);
        let spec = JobSpec {
            lo: 0,
            hi: 4,
            claim: 1,
            collect: false,
        };
        assert_eq!(core.publish(spec), Wake::Work);
        assert_eq!(core.worker_poll(0), WorkerPoll::Job(spec, 1));
        assert_eq!(core.quiesce_poll(), QuiescePoll::Wait);
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::None));
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::Quiesced));
        assert_eq!(core.quiesce_poll(), QuiescePoll::Quiesced);
        core.retire();
        assert_eq!(core.job, None);
        assert_eq!(core.request_shutdown(), Wake::Work);
        assert_eq!(core.worker_poll(1), WorkerPoll::Shutdown);
    }

    #[test]
    fn panic_latch_wins_over_quiesce_and_forces_shutdown() {
        let mut core = PoolCore::new(1);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 1,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.mark_panicked(), Wake::Both);
        // Even if active were to reach zero, panic is reported first.
        let _ = core.check_out();
        assert_eq!(core.quiesce_poll(), QuiescePoll::Panicked);
        // And workers drain out instead of taking more work.
        assert_eq!(core.worker_poll(0), WorkerPoll::Shutdown);
    }

    #[test]
    fn std_sync_round_trips_the_protocol_serially() {
        let sync = StdSync::new(1);
        let spec = JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: true,
        };
        let wake = sync.guarded(|c| c.publish(spec));
        sync.wake(wake);
        // poll_until returns immediately when the predicate holds.
        let (got, epoch) = sync.poll_until(Cv::Work, |c| match c.worker_poll(0) {
            WorkerPoll::Job(spec, epoch) => Some((spec, epoch)),
            _ => None,
        });
        assert_eq!((got, epoch), (spec, 1));
        let wake = sync.guarded(|c| match c.check_out() {
            CheckOutcome::Out(wake) => wake,
            CheckOutcome::Redo(range) => panic!("nothing to redo, got {range:?}"),
        });
        sync.wake(wake);
        let poll = sync.poll_until(Cv::Quiesced, |c| match c.quiesce_poll() {
            QuiescePoll::Wait => None,
            other => Some(other),
        });
        assert_eq!(poll, QuiescePoll::Quiesced);
    }

    #[test]
    fn smallest_scenario_is_exhausted_without_violation() {
        let report = check(&Scenario::new(2, vec![(0, 2)], 1));
        assert_eq!(report.violation, None);
        assert!(report.states > 10, "{report:?}");
        assert!(report.interleavings > 1, "{report:?}");
        assert!(report.max_depth > 10, "{report:?}");
    }

    #[test]
    fn every_mutation_is_caught() {
        for mutation in [
            Mutation::SkipPublishWake,
            Mutation::SkipCheckoutWake,
            Mutation::NonAtomicPark,
            Mutation::UnderCountActive,
        ] {
            let mut scenario = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
            scenario.mutation = mutation;
            let report = check(&scenario);
            assert!(
                report.violation.is_some(),
                "mutation {mutation:?} was not caught"
            );
        }
        // The death-path mutations need a worker death to corrupt.
        for mutation in [Mutation::SkipPanicWake, Mutation::DropRemainder] {
            let mut scenario = Scenario::new(2, vec![(0, 2)], 1);
            scenario.panic_at = Some(1);
            scenario.mutation = mutation;
            let report = check(&scenario);
            assert!(
                report.violation.is_some(),
                "mutation {mutation:?} was not caught"
            );
        }
        // The scenario-boundary mutation needs a sweep to corrupt.
        let mut scenario = Scenario::sweep(2, vec![2, 2], 1);
        scenario.mutation = Mutation::SkipScenarioWake;
        let report = check(&scenario);
        assert!(
            report.violation.is_some(),
            "mutation SkipScenarioWake was not caught"
        );
    }

    #[test]
    fn sweep_core_transitions_follow_the_queue() {
        let mut core = PoolCore::new(2);
        let spec = JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: false,
        };
        assert_eq!(core.publish_sweep(spec), Wake::Work);
        assert_eq!(core.scenarios_published, 1);
        // A worker that drains scenario 0 before scenario 1 exists
        // must wait, not check out.
        assert_eq!(core.sweep_poll(0), SweepPoll::Wait);
        // Appending is legal with workers active — the whole point.
        assert_eq!(core.active, 2);
        assert_eq!(core.extend_sweep(5), Wake::Work);
        assert_eq!(core.job.unwrap().hi, 5);
        assert_eq!(core.sweep_poll(0), SweepPoll::Next);
        assert_eq!(core.sweep_poll(1), SweepPoll::Wait);
        assert_eq!(core.seal_sweep(), Wake::Work);
        assert_eq!(core.sweep_poll(1), SweepPoll::Drained);
        // Check-out and quiesce are the classic epoch path.
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::None));
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::Quiesced));
        assert_eq!(core.quiesce_poll(), QuiescePoll::Quiesced);
        core.retire();
        assert_eq!(core.scenarios_published, 0);
        assert!(!core.sweep_sealed);
        // Shutdown drains a boundary-parked worker straight through.
        let _ = core.publish_sweep(spec);
        let _ = core.request_shutdown();
        assert_eq!(core.sweep_poll(0), SweepPoll::Drained);
    }

    #[test]
    fn sweep_scenarios_are_exhausted_without_violation() {
        // Cross-scenario stealing in every interleaving: workers may
        // drain scenario 0 and steal from scenario 1 before the seal,
        // park at the boundary, or race the coordinator's appends —
        // all schedules must cover the fused index space exactly.
        for counts in [vec![2, 2], vec![2, 1], vec![1, 2], vec![1, 1, 1]] {
            let report = check(&Scenario::sweep(2, counts.clone(), 1));
            assert_eq!(report.violation, None, "sweep {counts:?}: {report:?}");
            assert!(report.states > 10, "{report:?}");
        }
        // A claim spanning a whole scenario still honors boundaries.
        let report = check(&Scenario::sweep(2, vec![2, 2], 2));
        assert_eq!(report.violation, None, "{report:?}");
    }

    #[test]
    fn sweep_survives_spurious_wakeups_at_the_boundary() {
        let mut scenario = Scenario::sweep(2, vec![2, 1], 1);
        scenario.spurious = true;
        let report = check(&scenario);
        assert_eq!(report.violation, None, "{report:?}");
    }

    #[test]
    fn sweep_death_mid_sweep_is_supervised_to_full_coverage() {
        // A worker dies simulating scenario 0 (index 1) or scenario 1
        // (index 2): the survivor redoes the resubmitted ranges after
        // the queue drains, and the fused watermark still holds.
        for panic_at in [1u64, 2] {
            let mut scenario = Scenario::sweep(2, vec![2, 2], 1);
            scenario.panic_at = Some(panic_at);
            let report = check(&scenario);
            assert_eq!(report.violation, None, "panic_at {panic_at}: {report:?}");
        }
        // Total loss mid-sweep aborts.
        let mut scenario = Scenario::sweep(2, vec![2, 1], 1);
        scenario.panic_at = Some(1);
        scenario.sticky = true;
        let report = check(&scenario);
        assert_eq!(report.violation, None, "{report:?}");
    }

    #[test]
    fn supervised_death_completes_with_full_coverage() {
        // One worker dies mid-epoch; the survivor redoes its ranges and
        // the run completes cleanly in every interleaving.
        for claim in [1, 2] {
            let mut scenario = Scenario::new(2, vec![(0, 4)], claim);
            scenario.panic_at = Some(1);
            let report = check(&scenario);
            assert_eq!(report.violation, None, "claim {claim}: {report:?}");
        }
        // Three workers, death late in the epoch, across two epochs.
        let mut scenario = Scenario::new(3, vec![(0, 3), (3, 5)], 1);
        scenario.panic_at = Some(4);
        let report = check(&scenario);
        assert_eq!(report.violation, None, "{report:?}");
    }

    #[test]
    fn sticky_panic_escalates_to_total_loss_abort() {
        let mut scenario = Scenario::new(2, vec![(0, 3)], 1);
        scenario.panic_at = Some(1);
        scenario.sticky = true;
        let report = check(&scenario);
        assert_eq!(report.violation, None, "{report:?}");
        // A single worker has nobody to resubmit to: one-shot or not,
        // its death is a total loss.
        let mut scenario = Scenario::new(1, vec![(0, 2)], 1);
        scenario.panic_at = Some(0);
        let report = check(&scenario);
        assert_eq!(report.violation, None, "{report:?}");
    }

    #[test]
    fn mark_lost_idle_death_still_quiesces_the_epoch() {
        // Two workers; B accepts and finishes the epoch, A dies idle
        // without ever accepting it. A owes the check-out `publish`
        // armed on its behalf; its death must deliver it.
        let mut core = PoolCore::new(2);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::None)); // B
        assert_eq!(core.mark_lost(0, false, Vec::new()), Wake::Quiesced); // A
        assert_eq!(core.quiesce_poll(), QuiescePoll::Quiesced);
        assert_eq!(core.lost, 1);
        assert!(!core.panicked);
    }

    #[test]
    fn mark_lost_between_epochs_owes_nothing() {
        // A worker that served and checked out dies while no epoch is
        // in flight: no accounting changes, no wake.
        let mut core = PoolCore::new(2);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::None));
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::Quiesced));
        core.retire();
        assert_eq!(core.mark_lost(1, false, Vec::new()), Wake::None);
        assert_eq!(core.active, 0);
        // The next epoch arms with the survivor only.
        let _ = core.publish(JobSpec {
            lo: 2,
            hi: 4,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.active, 1);
    }

    #[test]
    fn mark_lost_resubmission_is_served_before_quiesce() {
        // A dies serving while B is still checked in: no re-arm is
        // needed, because B's own check-out must inspect the queue.
        let mut core = PoolCore::new(2);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.mark_lost(1, true, vec![(0, 1)]), Wake::None);
        assert_eq!(core.epoch, 1);
        assert_eq!(core.check_out(), CheckOutcome::Redo((0, 1))); // B redoes
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::Quiesced));
        assert_eq!(core.quiesce_poll(), QuiescePoll::Quiesced);
        assert!(core.resubmit.is_empty());
    }

    #[test]
    fn mark_lost_rearms_when_it_would_quiesce_with_work_pending() {
        // B has already checked out when A dies resubmitting: A's owed
        // check-out would quiesce the epoch, so the epoch re-arms and
        // B serves once more to drain the queue.
        let mut core = PoolCore::new(2);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 2,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::None)); // B
        assert_eq!(core.mark_lost(1, true, vec![(0, 1)]), Wake::Work); // A
        assert_eq!(core.epoch, 2);
        assert_eq!(core.active, 1);
        // B re-serves under the new epoch number, redoes A's range,
        // and only then checks out.
        assert!(matches!(core.worker_poll(1), WorkerPoll::Job(_, 2)));
        assert_eq!(core.check_out(), CheckOutcome::Redo((0, 1)));
        assert_eq!(core.check_out(), CheckOutcome::Out(Wake::Quiesced));
        assert_eq!(core.quiesce_poll(), QuiescePoll::Quiesced);
    }

    #[test]
    fn mark_lost_total_loss_degenerates_to_panic_abort() {
        let mut core = PoolCore::new(1);
        let _ = core.publish(JobSpec {
            lo: 0,
            hi: 1,
            claim: 1,
            collect: false,
        });
        assert_eq!(core.mark_lost(1, true, vec![(0, 1)]), Wake::Both);
        assert!(core.panicked && core.shutdown);
        assert_eq!(core.quiesce_poll(), QuiescePoll::Panicked);
        assert_eq!(core.worker_poll(1), WorkerPoll::Shutdown);
    }

    #[test]
    fn overlapping_epochs_are_reported_as_double_claims() {
        // A seeded violation of the no-double-claim invariant itself:
        // epoch 2 re-publishes an index epoch 1 already covered.
        let report = check(&Scenario::new(2, vec![(0, 2), (1, 3)], 1));
        let v = report.violation.expect("overlap must be caught");
        assert!(v.contains("simulated twice"), "{v}");
    }
}
