//! Event records produced by the simulation engines, plus the typed
//! run-health events the robustness layer reports (quarantined groups,
//! checkpoint degradation).

use crate::checkpoint::CheckpointError;
use serde::{Deserialize, Serialize};

/// How a double-disk failure came about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DdfKind {
    /// Two (or, under double parity, three) simultaneous operational
    /// failures — the only mode MTTDL knows about.
    DoubleOperational,
    /// An operational failure struck while another drive carried an
    /// uncorrected latent defect — the mode MTTDL misses entirely.
    LatentThenOperational,
}

/// One double-disk-failure (data-loss) event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdfEvent {
    /// Simulation time, hours since mission start.
    pub time: f64,
    /// Failure combination that caused the loss.
    pub kind: DdfKind,
}

/// Complete history of one simulated RAID group over its mission.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupHistory {
    /// Data-loss events in chronological order.
    pub ddfs: Vec<DdfEvent>,
    /// Operational failures over the mission (all drives).
    pub op_failures: u64,
    /// Latent defects created over the mission (all drives).
    pub latent_defects: u64,
    /// Latent defects corrected by scrubbing.
    pub scrubs_completed: u64,
    /// Drive restorations completed.
    pub restores_completed: u64,
    /// Total drive-hours spent down (failed or reconstructing) inside
    /// the mission window, summed across all slots.
    pub downtime_hours: f64,
    /// Natural log of the group's importance-sampling likelihood ratio
    /// `f/g` (original over sampling measure), accumulated over every
    /// tilted draw. `0.0` — weight exactly 1 — for unbiased runs.
    pub log_weight: f64,
}

impl GroupHistory {
    /// Number of data-loss events.
    pub fn ddf_count(&self) -> usize {
        self.ddfs.len()
    }

    /// Fraction of drive-hours the group's slots were up:
    /// `1 − downtime / (drives × mission)`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive inputs.
    pub fn availability(&self, drives: usize, mission_hours: f64) -> f64 {
        assert!(drives > 0 && mission_hours > 0.0, "need a real group");
        1.0 - self.downtime_hours / (drives as f64 * mission_hours)
    }

    /// DDFs no later than `t` hours.
    pub fn ddfs_by(&self, t: f64) -> usize {
        self.ddfs.iter().filter(|e| e.time <= t).count()
    }

    /// Checks the invariants every engine must maintain; used by the
    /// property tests.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on violation: unsorted DDF times,
    /// DDFs outside the mission, more scrubs than defects, or more
    /// DDFs than operational failures.
    pub fn assert_invariants(&self, mission_hours: f64) {
        assert!(
            self.ddfs.windows(2).all(|w| w[0].time <= w[1].time),
            "DDF times must be sorted"
        );
        assert!(
            self.ddfs
                .iter()
                .all(|e| e.time >= 0.0 && e.time <= mission_hours),
            "DDF outside mission window"
        );
        assert!(
            self.scrubs_completed <= self.latent_defects,
            "more scrubs than defects: {} > {}",
            self.scrubs_completed,
            self.latent_defects
        );
        assert!(
            (self.ddfs.len() as u64) <= self.op_failures,
            "every DDF is triggered by an operational failure"
        );
        assert!(
            self.downtime_hours >= 0.0 && self.downtime_hours.is_finite(),
            "downtime must be finite and non-negative"
        );
        assert!(
            self.op_failures > 0 || self.downtime_hours == 0.0,
            "downtime without failures"
        );
        assert!(
            self.log_weight.is_finite(),
            "log-weight must be finite, got {}",
            self.log_weight
        );
    }
}

/// One group whose simulation panicked and was quarantined instead of
/// aborting the run (streaming mode only; see the supervision notes in
/// [`crate::run`]). The group's index is counted toward the completed
/// watermark but its statistics are excluded — the final report carries
/// the quarantine count so the omission is visible, and checkpointing
/// is refused from then on so no resume can silently disagree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedGroup {
    /// Group index whose simulation panicked.
    pub index: u64,
    /// Panic payload rendered to text (`"<non-string panic>"` when the
    /// payload was not a string).
    pub message: String,
}

/// Typed notification that checkpointing has degraded: a write failed
/// past its retry budget, the run keeps going (aggregates are
/// unaffected), and the cadence backs off. Emitted once per
/// healthy-to-degraded transition through
/// [`crate::run::StreamObserver::on_checkpoint_degraded`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDegraded {
    /// Completed-group watermark at the failed write.
    pub groups_done: u64,
    /// Consecutive failed checkpoint writes, this one included.
    pub consecutive_failures: u64,
    /// The error that exhausted the retry budget.
    pub error: CheckpointError,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> GroupHistory {
        GroupHistory {
            ddfs: vec![
                DdfEvent {
                    time: 100.0,
                    kind: DdfKind::LatentThenOperational,
                },
                DdfEvent {
                    time: 5_000.0,
                    kind: DdfKind::DoubleOperational,
                },
            ],
            op_failures: 3,
            latent_defects: 5,
            scrubs_completed: 4,
            restores_completed: 3,
            downtime_hours: 40.0,
            log_weight: 0.0,
        }
    }

    #[test]
    fn availability_from_downtime() {
        let h = history();
        // 40 drive-hours down out of 8 x 87,600.
        let a = h.availability(8, 87_600.0);
        assert!((a - (1.0 - 40.0 / 700_800.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "downtime without failures")]
    fn downtime_without_failures_panics() {
        let h = GroupHistory {
            downtime_hours: 5.0,
            ..GroupHistory::default()
        };
        h.assert_invariants(100.0);
    }

    #[test]
    fn counting_helpers() {
        let h = history();
        assert_eq!(h.ddf_count(), 2);
        assert_eq!(h.ddfs_by(99.0), 0);
        assert_eq!(h.ddfs_by(100.0), 1);
        assert_eq!(h.ddfs_by(1e6), 2);
    }

    #[test]
    fn invariants_hold_for_valid_history() {
        history().assert_invariants(87_600.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_ddfs_panic() {
        let mut h = history();
        h.ddfs.reverse();
        h.assert_invariants(87_600.0);
    }

    #[test]
    #[should_panic(expected = "outside mission")]
    fn out_of_mission_ddf_panics() {
        let h = history();
        h.assert_invariants(1_000.0);
    }

    #[test]
    #[should_panic(expected = "more scrubs than defects")]
    fn scrub_overcount_panics() {
        let mut h = history();
        h.scrubs_completed = 10;
        h.assert_invariants(87_600.0);
    }

    #[test]
    #[should_panic(expected = "triggered by an operational failure")]
    fn ddf_overcount_panics() {
        let mut h = history();
        h.op_failures = 1;
        h.assert_invariants(87_600.0);
    }
}
