//! Runs the pool model checker over the CI scenario suite and prints
//! the state-space report as JSON (the contents of `BENCH_model.json`).
//!
//! `cargo xtask model` runs this binary, fails on any reported
//! violation, and diffs the output against the committed
//! `BENCH_model.json` so pool-protocol changes surface their
//! state-space delta in review; `cargo xtask model --update` refreshes
//! the committed file. The search is a deterministic DFS, so the
//! numbers are exactly reproducible.

use raidsim_core::sync_model::{check, ModelReport, Scenario};

/// The scenario suite: bounded, exhaustive, and fast enough for CI
/// (a couple of minutes in release mode, dominated by the
/// multi-group-claim contention scenario). Mirrors
/// `tests/pool_model.rs` and adds the fused-sweep scenarios.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let mut suite = vec![
        ("w2_e2_claim1", Scenario::new(2, vec![(0, 2), (2, 4)], 1)),
        ("w3_e2_claim2", Scenario::new(3, vec![(0, 3), (3, 6)], 2)),
        // 32 groups across 2 workers: `effective_claim(64, 32, 2) == 2`
        // under the tightened clamp (divisor 8), so this is the suite's
        // genuine multi-group-claim contention coverage (the small
        // scenarios all clamp to single-group claims). By far the
        // largest scenario — the 16 claim operations it takes to drain
        // the epoch dominate the suite's wall time.
        ("w2_e1_hi32_claim2", Scenario::new(2, vec![(0, 32)], 64)),
        // The same multi-index claim arithmetic without contention,
        // cheap enough for the debug-mode test suite too.
        ("w1_e1_hi16_claim2", Scenario::new(1, vec![(0, 16)], 64)),
        (
            "w2_ragged_empty_epoch",
            Scenario::new(2, vec![(0, 1), (1, 1), (1, 4)], 1),
        ),
    ];
    let mut spurious = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
    spurious.spurious = true;
    suite.push(("w2_e2_spurious", spurious));
    for idx in 0..4 {
        let mut panic = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
        panic.panic_at = Some(idx);
        suite.push((
            match idx {
                0 => "w2_e2_panic_at0",
                1 => "w2_e2_panic_at1",
                2 => "w2_e2_panic_at2",
                _ => "w2_e2_panic_at3",
            },
            panic,
        ));
    }
    // Supervised resubmission: a three-worker death whose remainder is
    // redone by the survivors, and a multi-group claim whose dying
    // worker leaves a remainder spanning several indices.
    let mut w3_panic = Scenario::new(3, vec![(0, 3)], 1);
    w3_panic.panic_at = Some(2);
    suite.push(("w3_e1_panic_resubmit", w3_panic));
    let mut wide_panic = Scenario::new(2, vec![(0, 6)], 3);
    wide_panic.panic_at = Some(1);
    suite.push(("w2_claim3_panic_remainder", wide_panic));
    // Total-loss escalation: a sticky fault kills every worker that
    // touches the index, and a single-worker death has no survivor —
    // both must abort cleanly in every interleaving.
    let mut sticky = Scenario::new(2, vec![(0, 2), (2, 4)], 1);
    sticky.panic_at = Some(1);
    sticky.sticky = true;
    suite.push(("w2_e2_sticky_total_loss", sticky));
    let mut solo = Scenario::new(1, vec![(0, 2)], 1);
    solo.panic_at = Some(0);
    suite.push(("w1_panic_abort", solo));
    // Fused-sweep coverage: the cross-scenario queue (publish-next
    // while workers drain the previous scenario), workers parked at the
    // scenario boundary, spurious wakeups while parked there, and
    // mid-sweep deaths supervised to full coverage.
    suite.push(("w2_sweep_2x2", Scenario::sweep(2, vec![2, 2], 1)));
    suite.push(("w2_sweep_ragged", Scenario::sweep(2, vec![2, 1], 1)));
    suite.push(("w3_sweep_1x1x1", Scenario::sweep(3, vec![1, 1, 1], 1)));
    suite.push(("w2_sweep_claim2", Scenario::sweep(2, vec![4, 2], 2)));
    let mut sweep_spurious = Scenario::sweep(2, vec![2, 2], 1);
    sweep_spurious.spurious = true;
    suite.push(("w2_sweep_spurious", sweep_spurious));
    let mut sweep_panic = Scenario::sweep(2, vec![2, 2], 1);
    sweep_panic.panic_at = Some(1);
    suite.push(("w2_sweep_panic_mid", sweep_panic));
    let mut sweep_sticky = Scenario::sweep(2, vec![2, 1], 1);
    sweep_sticky.panic_at = Some(0);
    sweep_sticky.sticky = true;
    suite.push(("w2_sweep_sticky_total_loss", sweep_sticky));
    suite
}

fn emit(name: &str, report: &ModelReport, out: &mut String) {
    out.push_str(&format!(
        "    {{\"scenario\": \"{name}\", \"states\": {}, \"interleavings\": {}, \
         \"max_depth\": {}, \"violations\": {}}}",
        report.states,
        report.interleavings,
        report.max_depth,
        u8::from(report.violation.is_some()),
    ));
}

fn main() {
    let mut body = String::new();
    let mut total_states = 0u64;
    let mut total_interleavings = 0u64;
    let mut max_depth = 0usize;
    let mut failed = false;
    let suite = scenarios();
    for (i, (name, scenario)) in suite.iter().enumerate() {
        let report = check(scenario);
        if let Some(v) = &report.violation {
            eprintln!("VIOLATION in {name}: {v}");
            failed = true;
        }
        total_states += report.states;
        total_interleavings = total_interleavings.saturating_add(report.interleavings);
        max_depth = max_depth.max(report.max_depth);
        emit(name, &report, &mut body);
        if i + 1 < suite.len() {
            body.push(',');
        }
        body.push('\n');
    }
    println!("{{");
    println!("  \"schema_version\": 1,");
    println!("  \"checker\": \"sync_model DFS, exact-state pruning\",");
    println!("  \"total_states\": {total_states},");
    println!("  \"total_interleavings\": {total_interleavings},");
    println!("  \"max_depth\": {max_depth},");
    println!("  \"scenarios\": [");
    print!("{body}");
    println!("  ]");
    println!("}}");
    if failed {
        std::process::exit(1);
    }
}
