//! Property-based tests for the HDD substrate.

use proptest::prelude::*;
use raidsim_dists::{LifeDistribution, Weibull3};
use raidsim_hdd::restore::{minimum_restore_hours, Capped, RestoreModel};
use raidsim_hdd::scrub::minimum_scrub_hours;
use raidsim_hdd::sector::DefectMap;
use raidsim_hdd::smart::{SmartConfig, SmartMonitor};
use raidsim_hdd::units::{Capacity, DataRate};
use raidsim_hdd::{DriveSpec, Interface};

fn interfaces() -> impl Strategy<Value = Interface> {
    prop_oneof![
        Just(Interface::FibreChannel1G),
        Just(Interface::FibreChannel2G),
        Just(Interface::FibreChannel4G),
        Just(Interface::SataI),
        Just(Interface::SataII),
        Just(Interface::ScsiUltra320),
    ]
}

fn drives() -> impl Strategy<Value = DriveSpec> {
    (10.0..2_000.0f64, 20.0..150.0f64, interfaces()).prop_map(|(gb, mb_s, iface)| {
        DriveSpec::builder("prop")
            .capacity(Capacity::from_gb(gb))
            .interface(iface)
            .sustained_rate(DataRate::from_mb_per_s(mb_s))
            .build()
            .expect("generated specs are valid")
    })
}

proptest! {
    #[test]
    fn restore_time_grows_with_group_size(drive in drives(), g in 2usize..30) {
        let smaller = minimum_restore_hours(&drive, g);
        let larger = minimum_restore_hours(&drive, g + 1);
        prop_assert!(larger >= smaller);
        prop_assert!(smaller > 0.0);
    }

    #[test]
    fn restore_time_grows_with_capacity(
        iface in interfaces(),
        gb in 10.0..1_000.0f64,
        g in 2usize..20,
    ) {
        let small = DriveSpec::builder("s")
            .capacity(Capacity::from_gb(gb))
            .interface(iface)
            .build()
            .unwrap();
        let big = DriveSpec::builder("b")
            .capacity(Capacity::from_gb(gb * 2.0))
            .interface(iface)
            .build()
            .unwrap();
        prop_assert!(
            minimum_restore_hours(&big, g) >= 2.0 * minimum_restore_hours(&small, g) - 1e-9
        );
    }

    #[test]
    fn restore_never_beats_both_bounds(drive in drives(), g in 2usize..30) {
        let t = minimum_restore_hours(&drive, g);
        prop_assert!(t >= drive.full_pass_hours() - 1e-12);
        let bus_bound = drive.interface().bus_rate().hours_to_transfer(drive.capacity())
            * g as f64;
        prop_assert!(t >= bus_bound - 1e-9);
    }

    #[test]
    fn restore_model_location_respects_foreground_io(
        drive in drives(),
        g in 2usize..20,
        io in 0.0..0.9f64,
    ) {
        let m = RestoreModel {
            group_size: g,
            foreground_io: io,
            ..RestoreModel::paper_base_case()
        };
        let w = m.weibull_for(&drive).unwrap();
        let idle_min = minimum_restore_hours(&drive, g);
        prop_assert!((w.location() - idle_min / (1.0 - io)).abs() < 1e-9);
    }

    #[test]
    fn capped_distribution_is_stochastically_smaller(
        cap in 10.0..200.0f64,
        eta in 5.0..50.0f64,
        beta in 0.5..3.0f64,
        t in 0.0..300.0f64,
    ) {
        let w = Weibull3::new(6.0, eta, beta).unwrap();
        let c = Capped::new(Box::new(w), cap).unwrap();
        let w2 = Weibull3::new(6.0, eta, beta).unwrap();
        // Capping can only move probability mass earlier.
        prop_assert!(c.cdf(t) >= w2.cdf(t) - 1e-12);
        // Capped::mean is a 20k-step trapezoid; when the cap sits far
        // in the tail the two means agree to ~1e-6, so compare at the
        // integrator's accuracy.
        prop_assert!(c.mean() <= w2.mean() + 1e-5 * w2.mean().max(1.0));
    }

    #[test]
    fn scrub_pass_scales_inversely_with_bandwidth(
        drive in drives(),
        frac in 0.01..1.0f64,
    ) {
        let full = minimum_scrub_hours(&drive, 1.0);
        let throttled = minimum_scrub_hours(&drive, frac);
        prop_assert!((throttled * frac - full).abs() < 1e-6 * full);
    }

    #[test]
    fn defect_map_counts_are_consistent(
        ops in proptest::collection::vec((0u64..500, any::<bool>()), 0..200),
    ) {
        // Random corrupt/scrub sequences: counts and states must stay
        // coherent and no operation may panic.
        let mut m = DefectMap::new(500, 1_000);
        for (sector, scrub) in ops {
            if scrub {
                let _ = m.scrub_repair(sector);
            } else {
                m.corrupt(sector).unwrap();
            }
            prop_assert!(m.latent_defect_count() + m.remapped_count() <= 500 + m.remapped_count());
            prop_assert_eq!(m.has_latent_defect(), m.latent_defect_count() > 0);
        }
        // A full scrub clears everything while spares last.
        let before = m.latent_defect_count();
        let repaired = m.scrub_all().unwrap();
        prop_assert_eq!(repaired, before);
        prop_assert!(!m.has_latent_defect());
    }

    #[test]
    fn smart_trip_requires_threshold_events_in_window(
        threshold in 2u32..20,
        window in 1.0..100.0f64,
        gaps in proptest::collection::vec(0.1..50.0f64, 1..100),
    ) {
        let mut m = SmartMonitor::new(SmartConfig {
            realloc_threshold: threshold,
            window_hours: window,
        });
        let mut t = 0.0;
        let mut times: Vec<f64> = Vec::new();
        for gap in gaps {
            t += gap;
            times.push(t);
            if let Some(trip) = m.record(t) {
                // Independently verify: `threshold` events within the
                // window ending at the trip time.
                let in_window = times
                    .iter()
                    .filter(|&&x| trip.at_hours - x <= window && x <= trip.at_hours)
                    .count() as u32;
                prop_assert!(in_window >= threshold,
                    "trip with only {in_window} events in window");
                return Ok(());
            }
        }
        // No trip: verify no window ever contained `threshold` events.
        for (i, &end) in times.iter().enumerate() {
            let in_window = times[..=i]
                .iter()
                .filter(|&&x| end - x <= window)
                .count() as u32;
            prop_assert!(in_window < threshold, "missed trip at {end}");
        }
    }
}
