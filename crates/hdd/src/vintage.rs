//! Published vintage populations (paper Figure 2).
//!
//! "Different vintages of the same HDD from the same manufacturer may
//! exhibit varying failure distributions." Figure 2 publishes fitted
//! Weibull parameters and failure/suspension counts for three
//! non-consecutive vintages of one drive model; this module records
//! those constants so the Figure 2 reproduction and the vintage-aware
//! simulations can reference them by name.

use raidsim_dists::{DistError, Weibull3};
use serde::{Deserialize, Serialize};

/// One production vintage of a drive model with its fitted failure
/// distribution and field sample sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vintage {
    /// Display name, e.g. `"Vintage 1"`.
    pub name: String,
    /// Fitted characteristic life η, hours.
    pub eta: f64,
    /// Fitted shape β.
    pub beta: f64,
    /// Failures observed in the field study.
    pub failures: u64,
    /// Suspensions (still-running drives) at study end.
    pub suspensions: u64,
    /// Observation window of the study, hours.
    pub window_hours: f64,
}

impl Vintage {
    /// The fitted time-to-operational-failure distribution (γ = 0).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if η/β are degenerate.
    pub fn distribution(&self) -> Result<Weibull3, DistError> {
        Weibull3::two_param(self.eta, self.beta)
    }

    /// Total units in the study.
    pub fn population(&self) -> u64 {
        self.failures + self.suspensions
    }

    /// Whether the vintage's hazard is increasing (β > 1).
    pub fn wears_out(&self) -> bool {
        self.beta > 1.0
    }
}

/// The three vintages published in paper Figure 2.
///
/// * Vintage 1: β = 1.0987, η = 4.5444×10⁵ h — effectively constant
///   failure rate; F = 198, S = 10,433.
/// * Vintage 2: β = 1.2162, η = 1.2566×10⁵ h — increasing;
///   F = 992, S = 23,064.
/// * Vintage 3: β = 1.4873, η = 7.5012×10⁴ h — markedly increasing;
///   F = 921, S = 22,913.
///
/// The studies observed drives "for up to 6,000 hours each"
/// (Section 6.1 describes the same field population).
pub fn fig2_vintages() -> Vec<Vintage> {
    vec![
        Vintage {
            name: "Vintage 1".into(),
            eta: 4.5444e5,
            beta: 1.0987,
            failures: 198,
            suspensions: 10_433,
            window_hours: 6_000.0,
        },
        Vintage {
            name: "Vintage 2".into(),
            eta: 1.2566e5,
            beta: 1.2162,
            failures: 992,
            suspensions: 23_064,
            window_hours: 6_000.0,
        },
        Vintage {
            name: "Vintage 3".into(),
            eta: 7.5012e4,
            beta: 1.4873,
            failures: 921,
            suspensions: 22_913,
            window_hours: 6_000.0,
        },
    ]
}

/// The Section 6.1 base-case field population: "a field population of
/// over 120,000 HDDs that operated for up to 6,000 hours each", fitted
/// as η = 461,386 h, β = 1.12.
pub fn base_case_population() -> Vintage {
    Vintage {
        name: "Base case (>120k drives)".into(),
        eta: 461_386.0,
        beta: 1.12,
        failures: 1_100, // implied by the fitted CDF at 6,000 h
        suspensions: 120_000,
        window_hours: 6_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::LifeDistribution;

    #[test]
    fn fig2_parameters_match_publication() {
        let v = fig2_vintages();
        assert_eq!(v.len(), 3);
        assert!((v[0].beta - 1.0987).abs() < 1e-9);
        assert!((v[1].eta - 125_660.0).abs() < 1.0);
        assert!((v[2].beta - 1.4873).abs() < 1e-9);
        assert_eq!(v[0].failures, 198);
        assert_eq!(v[0].suspensions, 10_433);
        assert_eq!(v[1].population(), 24_056);
        assert_eq!(v[2].population(), 23_834);
    }

    #[test]
    fn later_vintages_fail_faster_long_term() {
        // Figure 2's point: vintage quality *deteriorated*. Vintages 2
        // and 3 cross inside the 6,000 h window (3 has the steeper
        // slope but starts lower); past the crossover the ordering is
        // strictly 1 < 2 < 3 — check at 2 years.
        let v = fig2_vintages();
        let f: Vec<f64> = v
            .iter()
            .map(|v| v.distribution().unwrap().cdf(17_520.0))
            .collect();
        assert!(f[0] < f[1] && f[1] < f[2], "cdfs = {f:?}");
        // Vintage 1 is the best everywhere in the window too.
        let at_window: Vec<f64> = v
            .iter()
            .map(|v| v.distribution().unwrap().cdf(v.window_hours))
            .collect();
        assert!(at_window[0] < at_window[1] && at_window[0] < at_window[2]);
    }

    #[test]
    fn observed_failure_fractions_are_consistent_with_fits() {
        // Each vintage's F/(F+S) should be near its fitted CDF at the
        // window (drives entered service over time, so the empirical
        // fraction is below the full-window CDF; just check the order
        // of magnitude).
        for v in fig2_vintages() {
            let frac = v.failures as f64 / v.population() as f64;
            let cdf = v.distribution().unwrap().cdf(v.window_hours);
            assert!(
                frac < cdf * 3.0 && frac > cdf * 0.2,
                "{}: frac = {frac}, cdf = {cdf}",
                v.name
            );
        }
    }

    #[test]
    fn vintage_1_is_nearly_constant_rate() {
        let v = &fig2_vintages()[0];
        assert!((v.beta - 1.0).abs() < 0.1);
        assert!(v.wears_out()); // barely, but beta > 1
    }

    #[test]
    fn base_case_matches_section_6_1() {
        let b = base_case_population();
        assert_eq!(b.eta, 461_386.0);
        assert_eq!(b.beta, 1.12);
        assert!(b.population() > 120_000);
    }
}
