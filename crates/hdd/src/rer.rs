//! The read-error-rate model behind paper Table 1 and the latent-defect
//! distribution (Section 6.3).
//!
//! Latent defects are usage-dependent: the paper approximates usage as
//! *(read errors per byte read)* × *(bytes read per hour)*, giving an
//! hourly defect rate. Three field studies provide the RER values and
//! two read-rate levels bracket realistic usage; the cross product is
//! Table 1.

use crate::units::DataRate;
use raidsim_dists::{DistError, Weibull3};
use serde::{Deserialize, Serialize};

/// Read errors per byte read, verified by the drive manufacturer as HDD
/// problems (not the host's fault). Paper Section 6.3.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ReadErrorRate {
    errors_per_byte: f64,
}

impl ReadErrorRate {
    /// The best (lowest) published study: 8×10⁻¹⁵ errors/byte
    /// (63,000 drives over five months).
    pub const LOW: ReadErrorRate = ReadErrorRate {
        errors_per_byte: 8.0e-15,
    };

    /// The NetApp 2004 study: 8×10⁻¹⁴ errors/byte (282,000 drives).
    pub const MEDIUM: ReadErrorRate = ReadErrorRate {
        errors_per_byte: 8.0e-14,
    };

    /// The worst published study: 3.2×10⁻¹³ errors/byte (66,800 drives).
    pub const HIGH: ReadErrorRate = ReadErrorRate {
        errors_per_byte: 3.2e-13,
    };

    /// Creates a read-error rate from errors per byte.
    ///
    /// # Panics
    ///
    /// Panics if `errors_per_byte` is not finite and positive.
    pub fn new(errors_per_byte: f64) -> Self {
        assert!(
            errors_per_byte.is_finite() && errors_per_byte > 0.0,
            "read-error rate must be finite and positive"
        );
        Self { errors_per_byte }
    }

    /// Errors per byte read.
    pub fn errors_per_byte(&self) -> f64 {
        self.errors_per_byte
    }
}

/// Workload read intensity, in bytes read per hour.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ReadIntensity {
    bytes_per_hour: f64,
}

impl ReadIntensity {
    /// The paper's low usage level: 1.35×10⁹ bytes/hour.
    pub const LOW: ReadIntensity = ReadIntensity {
        bytes_per_hour: 1.35e9,
    };

    /// The paper's high usage level: 1.35×10¹⁰ bytes/hour.
    pub const HIGH: ReadIntensity = ReadIntensity {
        bytes_per_hour: 1.35e10,
    };

    /// Creates a read intensity from bytes per hour.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_hour` is not finite and positive.
    pub fn new(bytes_per_hour: f64) -> Self {
        assert!(
            bytes_per_hour.is_finite() && bytes_per_hour > 0.0,
            "read intensity must be finite and positive"
        );
        Self { bytes_per_hour }
    }

    /// Creates a read intensity from a sustained [`DataRate`].
    pub fn from_rate(rate: DataRate) -> Self {
        Self::new(rate.bytes_per_hour())
    }

    /// Bytes read per hour.
    pub fn bytes_per_hour(&self) -> f64 {
        self.bytes_per_hour
    }
}

/// Hourly latent-defect rate: `RER × read intensity` (errors/hour).
///
/// This is the cell formula of paper Table 1.
pub fn latent_defect_rate(rer: ReadErrorRate, intensity: ReadIntensity) -> f64 {
    rer.errors_per_byte() * intensity.bytes_per_hour()
}

/// The time-to-latent-defect distribution of Section 6.4: exponential
/// (`β = 1` — "The latent defect rate is assumed to be constant with
/// respect to time"), with characteristic life `1/rate`.
///
/// # Errors
///
/// Returns [`DistError::InvalidParameter`] if the resulting rate is
/// degenerate (cannot happen for valid inputs).
pub fn ttld_distribution(
    rer: ReadErrorRate,
    intensity: ReadIntensity,
) -> Result<Weibull3, DistError> {
    Weibull3::two_param(1.0 / latent_defect_rate(rer, intensity), 1.0)
}

/// One cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Cell {
    /// Row label (`"Low"`, `"Med"`, `"High"` RER).
    pub rer_label: &'static str,
    /// The read-error rate.
    pub rer: ReadErrorRate,
    /// Column label (`"Low"` or `"High"` read rate).
    pub intensity_label: &'static str,
    /// The read intensity.
    pub intensity: ReadIntensity,
    /// Resulting hourly latent-defect rate (errors/hour).
    pub errors_per_hour: f64,
}

/// Reconstructs the full Table 1 grid: three RER studies × two read
/// rates.
///
/// The corner values match the paper: `LOW × LOW = 1.08×10⁻⁵/h`,
/// `HIGH × HIGH = 4.32×10⁻³/h`.
pub fn table1() -> Vec<Table1Cell> {
    let rows = [
        ("Low", ReadErrorRate::LOW),
        ("Med", ReadErrorRate::MEDIUM),
        ("High", ReadErrorRate::HIGH),
    ];
    let cols = [("Low", ReadIntensity::LOW), ("High", ReadIntensity::HIGH)];
    let mut cells = Vec::with_capacity(6);
    for (rer_label, rer) in rows {
        for (intensity_label, intensity) in cols {
            cells.push(Table1Cell {
                rer_label,
                rer,
                intensity_label,
                intensity,
                errors_per_hour: latent_defect_rate(rer, intensity),
            });
        }
    }
    cells
}

/// The base-case latent-defect rate used in the paper's Table 2
/// simulations: the medium RER at the low read rate, `1.08×10⁻⁴`
/// errors/hour (characteristic life ≈ 9,259 h).
pub fn base_case_rate() -> f64 {
    latent_defect_rate(ReadErrorRate::MEDIUM, ReadIntensity::LOW)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::LifeDistribution;

    #[test]
    fn table1_corner_values_match_paper() {
        assert!(
            (latent_defect_rate(ReadErrorRate::LOW, ReadIntensity::LOW) - 1.08e-5).abs() < 1e-12
        );
        assert!(
            (latent_defect_rate(ReadErrorRate::LOW, ReadIntensity::HIGH) - 1.08e-4).abs() < 1e-11
        );
        assert!(
            (latent_defect_rate(ReadErrorRate::MEDIUM, ReadIntensity::HIGH) - 1.08e-3).abs()
                < 1e-10
        );
        assert!(
            (latent_defect_rate(ReadErrorRate::HIGH, ReadIntensity::HIGH) - 4.32e-3).abs() < 1e-10
        );
    }

    #[test]
    fn table1_has_six_cells_in_row_major_order() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].rer_label, "Low");
        assert_eq!(t[0].intensity_label, "Low");
        assert_eq!(t[5].rer_label, "High");
        assert_eq!(t[5].intensity_label, "High");
        // Rates increase down each column.
        assert!(t[0].errors_per_hour < t[2].errors_per_hour);
        assert!(t[2].errors_per_hour < t[4].errors_per_hour);
    }

    #[test]
    fn base_case_eta_is_9259_hours() {
        let d = ttld_distribution(ReadErrorRate::MEDIUM, ReadIntensity::LOW).unwrap();
        assert!((d.scale() - 9259.259).abs() < 0.1, "eta = {}", d.scale());
        assert_eq!(d.shape(), 1.0);
        // Mean equals eta for an exponential.
        assert!((d.mean() - d.scale()).abs() < 1e-6);
    }

    #[test]
    fn latent_rate_is_about_50x_operational_rate() {
        // Paper Section 8: the latent defect occurrence rate "may be 100
        // times greater than the operational failure rate". With the
        // base-case parameters the ratio is ~50; at the high read rate
        // it exceeds 100.
        let op_rate = 1.0 / 461_386.0;
        let ratio = base_case_rate() / op_rate;
        assert!(ratio > 40.0 && ratio < 60.0, "ratio = {ratio}");
        let high_ratio = latent_defect_rate(ReadErrorRate::MEDIUM, ReadIntensity::HIGH) / op_rate;
        assert!(high_ratio > 100.0, "high ratio = {high_ratio}");
    }

    #[test]
    fn intensity_from_rate() {
        let i = ReadIntensity::from_rate(DataRate::from_bytes_per_s(375_000.0));
        assert!((i.bytes_per_hour() - 1.35e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_rer() {
        ReadErrorRate::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_negative_intensity() {
        ReadIntensity::new(-1.0);
    }
}
