//! Hard-disk-drive substrate for `raidsim`.
//!
//! The Elerath–Pecht model (DSN 2007) derives its four transition
//! distributions from *physical* drive quantities: capacities, bus and
//! media transfer rates, read-error rates per byte, and the taxonomy of
//! failure mechanisms in the paper's Figure 3. This crate models those
//! quantities so the simulation parameters are grounded rather than
//! free-floating numbers:
//!
//! * [`units`] — capacity and data-rate newtypes.
//! * [`Interface`] and [`DriveSpec`] — drive and bus parameters for the
//!   drives the paper discusses (144 GB Fibre Channel, 500 GB SATA).
//! * [`failure_modes`] — the operational-failure / latent-defect
//!   taxonomy of Figure 3, with a sampling catalog.
//! * [`rer`] — the read-error-rate model behind Table 1 and the latent
//!   defect (TTLd) distribution of Section 6.3.
//! * [`restore`] — the minimum-restore-time model of Section 6.2,
//!   reproducing the worked examples (≈3 h for a 144 GB FC drive in a
//!   group of 14; 10.4 h for a 500 GB SATA drive), and the capped
//!   restore distribution for OS-enforced reconstruction deadlines.
//! * [`scrub`] — the scrub-pass-time model of Section 6.4.
//! * [`smart`] — the SMART trip model (excessive reallocations within a
//!   window ⇒ the drive is retired as an operational failure).
//! * [`sector`] — a sector/defect map with spare-pool remapping, used
//!   for failure-injection tests and the scrub semantics ablation.
//! * [`vintage`] — the published vintage populations of Figure 2.
//!
//! # Example
//!
//! ```
//! use raidsim_hdd::{DriveSpec, Interface};
//! use raidsim_hdd::units::{Capacity, DataRate};
//!
//! # fn main() -> Result<(), raidsim_hdd::HddError> {
//! // The paper's SATA example drive (Section 6.2).
//! let drive = DriveSpec::builder("500GB-SATA")
//!     .capacity(Capacity::from_gb(500.0))
//!     .interface(Interface::SataI)
//!     .sustained_rate(DataRate::from_mb_per_s(50.0))
//!     .build()?;
//! let min_restore = raidsim_hdd::restore::minimum_restore_hours(&drive, 14);
//! assert!((min_restore - 10.4).abs() < 0.1); // the paper's 10.4 h
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drive;
mod error;
mod interface;

pub mod catalog;
pub mod failure_modes;
pub mod rer;
pub mod restore;
pub mod scrub;
pub mod sector;
pub mod smart;
pub mod units;
pub mod vintage;

pub use drive::{DriveSpec, DriveSpecBuilder};
pub use error::HddError;
pub use interface::Interface;
