//! The failure-mode taxonomy of paper Figure 3.
//!
//! Every read failure is classified by its *consequence* at the RAID
//! level: either the drive cannot find data at all (an **operational
//! failure**, resolved only by replacing the drive) or data is missing or
//! corrupted while the drive otherwise works (a **latent defect**,
//! resolved by scrubbing). The two consequences have different failure
//! distributions and different roles in the double-disk-failure logic —
//! "Each group has its own unique failure distribution and consequence
//! at the system level" (Section 3).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// System-level consequence of a failure mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consequence {
    /// The drive cannot find data: it must be replaced and its contents
    /// reconstructed from the rest of the group.
    Operational,
    /// Data is missing or corrupted but undetected: repaired by a scrub
    /// (or silently lost if a simultaneous operational failure strikes
    /// another drive).
    LatentDefect,
}

/// Operational ("cannot find data") failure mechanisms — left column of
/// Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OperationalMode {
    /// Servo wedges destroyed or corrupted; the head cannot position.
    /// Servo data is written at manufacture and cannot be rebuilt by
    /// RAID.
    BadServoTrack,
    /// Failed external electronics (DRAM, cracked chip capacitors).
    BadElectronics,
    /// Non-repeatable run-out: bearings, wear, vibration or servo-loop
    /// errors prevent locking onto a track.
    CantStayOnTrack,
    /// Head failure, mostly magnetic-property degradation (ESD, impact,
    /// heat).
    BadReadHead,
    /// Self-monitoring threshold exceeded (e.g. too many reallocations
    /// in a window); the drive is proactively failed.
    SmartLimitExceeded,
}

/// Causes of data written badly in the first place — upper right of
/// Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WriteErrorCause {
    /// Writing over scratched, smeared or pitted media.
    BadMedia,
    /// The drive's inherent bit-error rate.
    InherentBitError,
    /// Aerodynamic disturbance let the head fly too high, writing weak
    /// magnetic transitions.
    HighFlyWrite,
}

/// Causes of data destroyed after a good write — lower right of
/// Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DestructionCause {
    /// Head–disk contact heating; repeated contacts thermally erase
    /// data.
    ThermalAsperity,
    /// Corrosion of the media, possibly accelerated by asperity heat.
    Corrosion,
    /// Hard particles scratching, or soft particles smearing, the media
    /// surface while the disk rotates.
    ScratchOrSmear,
}

/// A concrete failure mechanism from the Figure 3 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// An operational ("cannot find data") mechanism.
    Operational(OperationalMode),
    /// A latent defect created at write time.
    WriteError(WriteErrorCause),
    /// A latent defect created after a successful write.
    DataDestroyed(DestructionCause),
}

impl FailureMode {
    /// The system-level consequence of this mechanism.
    pub fn consequence(&self) -> Consequence {
        match self {
            FailureMode::Operational(_) => Consequence::Operational,
            FailureMode::WriteError(_) | FailureMode::DataDestroyed(_) => Consequence::LatentDefect,
        }
    }

    /// All mechanisms in the taxonomy, in Figure 3 order.
    pub fn all() -> &'static [FailureMode] {
        use DestructionCause::*;
        use OperationalMode::*;
        use WriteErrorCause::*;
        &[
            FailureMode::Operational(BadServoTrack),
            FailureMode::Operational(BadElectronics),
            FailureMode::Operational(CantStayOnTrack),
            FailureMode::Operational(BadReadHead),
            FailureMode::Operational(SmartLimitExceeded),
            FailureMode::WriteError(BadMedia),
            FailureMode::WriteError(InherentBitError),
            FailureMode::WriteError(HighFlyWrite),
            FailureMode::DataDestroyed(ThermalAsperity),
            FailureMode::DataDestroyed(Corrosion),
            FailureMode::DataDestroyed(ScratchOrSmear),
        ]
    }
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureMode::Operational(OperationalMode::BadServoTrack) => "bad servo track",
            FailureMode::Operational(OperationalMode::BadElectronics) => "bad electronics",
            FailureMode::Operational(OperationalMode::CantStayOnTrack) => "can't stay on track",
            FailureMode::Operational(OperationalMode::BadReadHead) => "bad read head",
            FailureMode::Operational(OperationalMode::SmartLimitExceeded) => "SMART limit exceeded",
            FailureMode::WriteError(WriteErrorCause::BadMedia) => "write on bad media",
            FailureMode::WriteError(WriteErrorCause::InherentBitError) => "inherent bit error",
            FailureMode::WriteError(WriteErrorCause::HighFlyWrite) => "high-fly write",
            FailureMode::DataDestroyed(DestructionCause::ThermalAsperity) => "thermal asperity",
            FailureMode::DataDestroyed(DestructionCause::Corrosion) => "corrosion",
            FailureMode::DataDestroyed(DestructionCause::ScratchOrSmear) => "scratch or smear",
        };
        f.write_str(s)
    }
}

/// A catalog of failure mechanisms with relative frequencies, used to
/// attribute simulated failures to physical causes (for reporting; the
/// dynamics only depend on the [`Consequence`]).
///
/// The default catalog's weights are qualitative, reflecting the paper's
/// prose: head failures dominate operational failures ("Currently, most
/// head failures are due to changes in magnetic properties"), media
/// scratches/smears and thermal asperities dominate latent defects
/// ("a greater source of errors is the magnetic recording media").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeCatalog {
    entries: Vec<(FailureMode, f64)>,
}

impl ModeCatalog {
    /// Builds a catalog from `(mode, weight)` pairs. Weights need not be
    /// normalized but must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive.
    pub fn new(entries: Vec<(FailureMode, f64)>) -> Self {
        assert!(!entries.is_empty(), "catalog must not be empty");
        assert!(
            entries.iter().all(|(_, w)| w.is_finite() && *w > 0.0),
            "catalog weights must be positive"
        );
        Self { entries }
    }

    /// The default qualitative catalog described in the type docs.
    pub fn paper_default() -> Self {
        use DestructionCause::*;
        use OperationalMode::*;
        use WriteErrorCause::*;
        Self::new(vec![
            (FailureMode::Operational(BadReadHead), 0.35),
            (FailureMode::Operational(CantStayOnTrack), 0.20),
            (FailureMode::Operational(SmartLimitExceeded), 0.20),
            (FailureMode::Operational(BadElectronics), 0.15),
            (FailureMode::Operational(BadServoTrack), 0.10),
            (FailureMode::DataDestroyed(ScratchOrSmear), 0.35),
            (FailureMode::DataDestroyed(ThermalAsperity), 0.25),
            (FailureMode::WriteError(BadMedia), 0.20),
            (FailureMode::WriteError(HighFlyWrite), 0.10),
            (FailureMode::WriteError(InherentBitError), 0.05),
            (FailureMode::DataDestroyed(Corrosion), 0.05),
        ])
    }

    /// Samples a mechanism with the given consequence, proportional to
    /// catalog weight.
    ///
    /// # Panics
    ///
    /// Panics if the catalog has no mechanism with that consequence.
    pub fn sample(&self, consequence: Consequence, rng: &mut dyn Rng) -> FailureMode {
        let total: f64 = self
            .entries
            .iter()
            .filter(|(m, _)| m.consequence() == consequence)
            .map(|(_, w)| w)
            .sum();
        assert!(
            total > 0.0,
            "no mechanisms with consequence {consequence:?}"
        );
        let mut u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        for (m, w) in &self.entries {
            if m.consequence() != consequence {
                continue;
            }
            if u < *w {
                return *m;
            }
            u -= w;
        }
        // Floating point slack.
        self.entries
            .iter()
            .rev()
            .find(|(m, _)| m.consequence() == consequence)
            .map(|(m, _)| *m)
            .expect("checked above")
    }

    /// The `(mode, weight)` entries.
    pub fn entries(&self) -> &[(FailureMode, f64)] {
        &self.entries
    }
}

impl Default for ModeCatalog {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn taxonomy_has_eleven_mechanisms() {
        assert_eq!(FailureMode::all().len(), 11);
    }

    #[test]
    fn consequences_partition_the_taxonomy() {
        let ops = FailureMode::all()
            .iter()
            .filter(|m| m.consequence() == Consequence::Operational)
            .count();
        let lds = FailureMode::all()
            .iter()
            .filter(|m| m.consequence() == Consequence::LatentDefect)
            .count();
        assert_eq!(ops, 5); // Figure 3 lists five operational causes
        assert_eq!(lds, 6); // and six latent-defect causes
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            FailureMode::Operational(OperationalMode::SmartLimitExceeded).to_string(),
            "SMART limit exceeded"
        );
        assert_eq!(
            FailureMode::DataDestroyed(DestructionCause::ThermalAsperity).to_string(),
            "thermal asperity"
        );
    }

    #[test]
    fn sampling_respects_consequence() {
        let cat = ModeCatalog::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let m = cat.sample(Consequence::Operational, &mut rng);
            assert_eq!(m.consequence(), Consequence::Operational);
            let m = cat.sample(Consequence::LatentDefect, &mut rng);
            assert_eq!(m.consequence(), Consequence::LatentDefect);
        }
    }

    #[test]
    fn sampling_follows_weights() {
        let cat = ModeCatalog::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 50_000;
        let head_failures = (0..n)
            .filter(|_| {
                cat.sample(Consequence::Operational, &mut rng)
                    == FailureMode::Operational(OperationalMode::BadReadHead)
            })
            .count() as f64;
        // Weight 0.35 of the operational total (which sums to 1.0).
        let frac = head_failures / n as f64;
        assert!((frac - 0.35).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalog_panics() {
        ModeCatalog::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn nonpositive_weight_panics() {
        ModeCatalog::new(vec![(
            FailureMode::Operational(OperationalMode::BadReadHead),
            0.0,
        )]);
    }
}
