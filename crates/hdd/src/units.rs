//! Capacity and data-rate newtypes.
//!
//! Storage marketing units (decimal GB) are used throughout, matching the
//! paper's arithmetic: its 500 GB SATA example divides `500 × 10⁹` bytes
//! by a `1.5 Gb/s` bus to get 10.4 hours.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A storage capacity, stored in bytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Capacity {
    bytes: f64,
}

impl Capacity {
    /// Creates a capacity from raw bytes.
    pub fn from_bytes(bytes: f64) -> Self {
        Self { bytes }
    }

    /// Creates a capacity from decimal gigabytes (`10⁹` bytes).
    pub fn from_gb(gb: f64) -> Self {
        Self { bytes: gb * 1.0e9 }
    }

    /// Creates a capacity from decimal terabytes (`10¹²` bytes).
    pub fn from_tb(tb: f64) -> Self {
        Self { bytes: tb * 1.0e12 }
    }

    /// The capacity in bytes.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }

    /// The capacity in decimal gigabytes.
    pub fn gb(&self) -> f64 {
        self.bytes / 1.0e9
    }
}

impl Add for Capacity {
    type Output = Capacity;
    fn add(self, rhs: Capacity) -> Capacity {
        Capacity::from_bytes(self.bytes + rhs.bytes)
    }
}

impl Sub for Capacity {
    type Output = Capacity;
    fn sub(self, rhs: Capacity) -> Capacity {
        Capacity::from_bytes(self.bytes - rhs.bytes)
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bytes >= 1.0e12 {
            write!(f, "{:.2} TB", self.bytes / 1.0e12)
        } else {
            write!(f, "{:.1} GB", self.bytes / 1.0e9)
        }
    }
}

/// A data transfer rate, stored in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct DataRate {
    bytes_per_s: f64,
}

impl DataRate {
    /// Creates a rate from bytes per second.
    pub fn from_bytes_per_s(bytes_per_s: f64) -> Self {
        Self { bytes_per_s }
    }

    /// Creates a rate from megabytes per second (`10⁶` B/s).
    pub fn from_mb_per_s(mb: f64) -> Self {
        Self {
            bytes_per_s: mb * 1.0e6,
        }
    }

    /// Creates a rate from gigabits per second (`10⁹` bit/s ÷ 8) —
    /// the unit bus speeds are quoted in ("a 2 giga-bits per second
    /// capability", paper Section 6.2).
    pub fn from_gbit_per_s(gbit: f64) -> Self {
        Self {
            bytes_per_s: gbit * 1.0e9 / 8.0,
        }
    }

    /// The rate in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        self.bytes_per_s
    }

    /// The rate in bytes per hour — the unit of the paper's Table 1.
    pub fn bytes_per_hour(&self) -> f64 {
        self.bytes_per_s * 3600.0
    }

    /// The rate in megabytes per second.
    pub fn mb_per_s(&self) -> f64 {
        self.bytes_per_s / 1.0e6
    }

    /// Hours to transfer `capacity` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive.
    pub fn hours_to_transfer(&self, capacity: Capacity) -> f64 {
        assert!(
            self.bytes_per_s > 0.0,
            "cannot transfer at a non-positive rate"
        );
        capacity.bytes() / self.bytes_per_s / 3600.0
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MB/s", self.bytes_per_s / 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversions() {
        assert_eq!(Capacity::from_gb(500.0).bytes(), 5.0e11);
        assert_eq!(Capacity::from_tb(1.0).gb(), 1000.0);
        assert_eq!(
            Capacity::from_gb(144.0) + Capacity::from_gb(6.0),
            Capacity::from_gb(150.0)
        );
        assert_eq!(
            Capacity::from_gb(150.0) - Capacity::from_gb(6.0),
            Capacity::from_gb(144.0)
        );
    }

    #[test]
    fn rate_conversions() {
        // 2 Gb/s = 250 MB/s, the FC bus of the paper.
        let fc = DataRate::from_gbit_per_s(2.0);
        assert!((fc.mb_per_s() - 250.0).abs() < 1e-9);
        // 1.5 Gb/s = 187.5 MB/s, the SATA-I bus.
        let sata = DataRate::from_gbit_per_s(1.5);
        assert!((sata.mb_per_s() - 187.5).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_hour_matches_table1_scale() {
        // 1.35e9 B/h (the paper's low read rate) = 375 kB/s.
        let r = DataRate::from_bytes_per_s(375_000.0);
        assert!((r.bytes_per_hour() - 1.35e9).abs() < 1.0);
    }

    #[test]
    fn transfer_time_example() {
        // 500 GB at 187.5 MB/s = 0.74 h for a single linear pass.
        let t = DataRate::from_gbit_per_s(1.5).hours_to_transfer(Capacity::from_gb(500.0));
        assert!((t - 0.7407).abs() < 1e-3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Capacity::from_gb(144.0).to_string(), "144.0 GB");
        assert_eq!(Capacity::from_tb(2.0).to_string(), "2.00 TB");
        assert_eq!(DataRate::from_mb_per_s(50.0).to_string(), "50.0 MB/s");
    }

    #[test]
    #[should_panic(expected = "non-positive rate")]
    fn zero_rate_transfer_panics() {
        DataRate::from_bytes_per_s(0.0).hours_to_transfer(Capacity::from_gb(1.0));
    }
}
