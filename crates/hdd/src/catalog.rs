//! A catalog of period-correct drive models.
//!
//! The paper's worked examples use two drives (144 GB FC, 500 GB
//! SATA); real planning sweeps a product line. This catalog collects
//! representative mid-2000s models with their physical parameters and
//! a default operational-failure distribution per class, so examples
//! and experiments can iterate `catalog::all()` instead of hand-rolling
//! specs.

use crate::units::{Capacity, DataRate};
use crate::{DriveSpec, Interface};
use raidsim_dists::{DistError, Weibull3};
use serde::{Deserialize, Serialize};

/// Market segment of a drive model, determining its default failure
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriveClass {
    /// 10–15k rpm FC/SCSI drives: the paper's base-case population
    /// (η = 461,386 h, β = 1.12).
    Enterprise,
    /// 7.2k rpm SATA drives: shorter characteristic life, slightly
    /// steeper wear-out (consistent with the published vintage
    /// spread).
    Nearline,
}

impl DriveClass {
    /// Default time-to-operational-failure distribution for the class.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] never for the checked-in
    /// constants; the `Result` mirrors the distribution constructor.
    pub fn default_ttop(&self) -> Result<Weibull3, DistError> {
        match self {
            DriveClass::Enterprise => Weibull3::two_param(461_386.0, 1.12),
            DriveClass::Nearline => Weibull3::two_param(300_000.0, 1.25),
        }
    }
}

/// A cataloged drive model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The drive's physical specification.
    pub spec: DriveSpec,
    /// Market segment.
    pub class: DriveClass,
}

/// All cataloged models, smallest capacity first.
///
/// # Panics
///
/// Never panics; the checked-in specs are valid.
pub fn all() -> Vec<CatalogEntry> {
    let build = |model: &str, gb: f64, iface: Interface, mb_s: f64, rpm: u32| {
        DriveSpec::builder(model)
            .capacity(Capacity::from_gb(gb))
            .interface(iface)
            .sustained_rate(DataRate::from_mb_per_s(mb_s))
            .rpm(rpm)
            .build()
            .expect("catalog specs are valid")
    };
    vec![
        CatalogEntry {
            spec: build("73GB-FC-15k", 73.0, Interface::FibreChannel2G, 75.0, 15_000),
            class: DriveClass::Enterprise,
        },
        CatalogEntry {
            spec: build(
                "144GB-FC-10k",
                144.0,
                Interface::FibreChannel2G,
                50.0,
                10_000,
            ),
            class: DriveClass::Enterprise,
        },
        CatalogEntry {
            spec: build("250GB-SATA", 250.0, Interface::SataI, 45.0, 7_200),
            class: DriveClass::Nearline,
        },
        CatalogEntry {
            spec: build(
                "300GB-FC-10k",
                300.0,
                Interface::FibreChannel4G,
                65.0,
                10_000,
            ),
            class: DriveClass::Enterprise,
        },
        CatalogEntry {
            spec: build("500GB-SATA", 500.0, Interface::SataI, 50.0, 7_200),
            class: DriveClass::Nearline,
        },
        CatalogEntry {
            spec: build("750GB-SATA-II", 750.0, Interface::SataII, 60.0, 7_200),
            class: DriveClass::Nearline,
        },
    ]
}

/// Looks up a model by name.
pub fn find(model: &str) -> Option<CatalogEntry> {
    all().into_iter().find(|e| e.spec.model() == model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::minimum_restore_hours;
    use raidsim_dists::LifeDistribution;

    #[test]
    fn catalog_is_sorted_and_complete() {
        let entries = all();
        assert_eq!(entries.len(), 6);
        assert!(entries
            .windows(2)
            .all(|w| w[0].spec.capacity().bytes() <= w[1].spec.capacity().bytes()));
    }

    #[test]
    fn find_by_model() {
        assert!(find("500GB-SATA").is_some());
        assert!(find("flopotron").is_none());
        assert_eq!(find("144GB-FC-10k").unwrap().class, DriveClass::Enterprise);
    }

    #[test]
    fn class_distributions_are_sane() {
        let ent = DriveClass::Enterprise.default_ttop().unwrap();
        let near = DriveClass::Nearline.default_ttop().unwrap();
        // Enterprise outlives nearline, both wear out (beta > 1).
        assert!(ent.mean() > near.mean());
        assert!(ent.shape() > 1.0 && near.shape() > 1.0);
    }

    #[test]
    fn restore_floors_scale_with_capacity() {
        let entries = all();
        let small = minimum_restore_hours(&entries[0].spec, 14);
        let large = minimum_restore_hours(&entries[5].spec, 14);
        assert!(large > 4.0 * small, "small = {small}, large = {large}");
    }

    #[test]
    fn paper_drives_are_in_the_catalog() {
        // The two Section 6.2 worked examples exist by (approximate)
        // spec: 144 GB FC and 500 GB SATA.
        let fc = find("144GB-FC-10k").unwrap();
        assert_eq!(fc.spec.capacity().gb(), 144.0);
        let sata = find("500GB-SATA").unwrap();
        assert!((minimum_restore_hours(&sata.spec, 14) - 10.37).abs() < 0.05);
    }
}
