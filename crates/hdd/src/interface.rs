use crate::units::DataRate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The host interface / data bus a drive (and its RAID group) hangs off.
///
/// The paper's restore-time analysis (Section 6.2) is bus-bound: "The
/// data-bus to which the RAID group is attached has only a 2 giga-bits
/// per second capability." Reconstruction must read every surviving drive
/// and write the replacement over this shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Interface {
    /// 1 Gb/s Fibre Channel.
    FibreChannel1G,
    /// 2 Gb/s Fibre Channel — the paper's FC example bus.
    FibreChannel2G,
    /// 4 Gb/s Fibre Channel (contemporary high end).
    FibreChannel4G,
    /// Serial ATA 1.5 Gb/s — the paper's SATA example bus.
    SataI,
    /// Serial ATA 3 Gb/s.
    SataII,
    /// Ultra-320 parallel SCSI (320 MB/s shared bus).
    ScsiUltra320,
}

impl Interface {
    /// The shared bus bandwidth for a RAID group on this interface.
    pub fn bus_rate(&self) -> DataRate {
        match self {
            Interface::FibreChannel1G => DataRate::from_gbit_per_s(1.0),
            Interface::FibreChannel2G => DataRate::from_gbit_per_s(2.0),
            Interface::FibreChannel4G => DataRate::from_gbit_per_s(4.0),
            Interface::SataI => DataRate::from_gbit_per_s(1.5),
            Interface::SataII => DataRate::from_gbit_per_s(3.0),
            Interface::ScsiUltra320 => DataRate::from_mb_per_s(320.0),
        }
    }

    /// Typical sustained media transfer rate for drives of this class in
    /// the paper's era ("Fibre Channel HDDs can sustain up to
    /// 100MB/second data transfer rates, although 50MB/sec is more
    /// common").
    pub fn typical_drive_rate(&self) -> DataRate {
        match self {
            Interface::FibreChannel1G
            | Interface::FibreChannel2G
            | Interface::FibreChannel4G
            | Interface::ScsiUltra320 => DataRate::from_mb_per_s(50.0),
            Interface::SataI | Interface::SataII => DataRate::from_mb_per_s(50.0),
        }
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interface::FibreChannel1G => "FC 1Gb/s",
            Interface::FibreChannel2G => "FC 2Gb/s",
            Interface::FibreChannel4G => "FC 4Gb/s",
            Interface::SataI => "SATA 1.5Gb/s",
            Interface::SataII => "SATA 3Gb/s",
            Interface::ScsiUltra320 => "SCSI U320",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bus_rates() {
        assert!((Interface::FibreChannel2G.bus_rate().mb_per_s() - 250.0).abs() < 1e-9);
        assert!((Interface::SataI.bus_rate().mb_per_s() - 187.5).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(Interface::FibreChannel2G.to_string(), "FC 2Gb/s");
        assert_eq!(Interface::SataI.to_string(), "SATA 1.5Gb/s");
    }

    #[test]
    fn drive_rates_are_positive() {
        for i in [
            Interface::FibreChannel1G,
            Interface::FibreChannel2G,
            Interface::FibreChannel4G,
            Interface::SataI,
            Interface::SataII,
            Interface::ScsiUltra320,
        ] {
            assert!(i.typical_drive_rate().bytes_per_s() > 0.0);
            assert!(i.bus_rate().bytes_per_s() > 0.0);
        }
    }
}
