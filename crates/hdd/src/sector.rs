//! Sector-level defect map with spare-pool remapping.
//!
//! Models the paper's repair mechanics at block granularity: "If only a
//! few blocks of data are corrupted, the reconstructed data is written
//! to another good section of the HDD and the faulty section is mapped
//! out to prevent reuse" (Section 4.2). Used by failure-injection tests
//! and the scrub-semantics ablation, where the *number* and *location*
//! of latent defects matter rather than just their existence.

use crate::HddError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// State of one logical sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SectorState {
    /// Readable, data intact.
    Good,
    /// Carries an undetected (latent) data corruption.
    LatentDefect,
    /// Mapped out to the spare pool after a defect was found; reads are
    /// served by the remapped sector.
    Remapped,
}

/// Defect map for one drive: tracks latent defects and remaps.
///
/// Sectors are logical 512-byte units addressed `0..total_sectors`. The
/// map is sparse — only non-`Good` sectors are stored — so drives with
/// billions of sectors cost nothing until defects appear.
///
/// # Example
///
/// ```
/// use raidsim_hdd::sector::DefectMap;
///
/// # fn main() -> Result<(), raidsim_hdd::HddError> {
/// let mut map = DefectMap::for_capacity_bytes(500.0e9);
/// map.corrupt(1_000)?;                  // a latent defect appears
/// assert!(map.has_latent_defect());
/// assert!(map.scrub_repair(1_000)?);    // the scrub finds and remaps it
/// assert!(!map.has_latent_defect());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectMap {
    total_sectors: u64,
    spare_sectors: u64,
    spares_used: u64,
    // Sparse: absent = Good.
    states: BTreeMap<u64, SectorState>,
}

impl DefectMap {
    /// Creates a defect map for a drive with `total_sectors` logical
    /// sectors and `spare_sectors` spares for remapping.
    ///
    /// # Panics
    ///
    /// Panics if `total_sectors` is zero.
    pub fn new(total_sectors: u64, spare_sectors: u64) -> Self {
        assert!(total_sectors > 0, "drive must have at least one sector");
        Self {
            total_sectors,
            spare_sectors,
            spares_used: 0,
            states: BTreeMap::new(),
        }
    }

    /// Creates a defect map sized for a drive capacity in bytes
    /// (512-byte sectors, 0.1% spares — a typical provisioning level).
    pub fn for_capacity_bytes(bytes: f64) -> Self {
        let total = (bytes / 512.0).max(1.0) as u64;
        Self::new(total, total / 1000)
    }

    /// Total logical sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Spares remaining.
    pub fn spares_remaining(&self) -> u64 {
        self.spare_sectors - self.spares_used
    }

    /// Current state of a sector.
    ///
    /// # Errors
    ///
    /// Returns [`HddError::SectorOutOfRange`] for addresses beyond the
    /// drive.
    pub fn state(&self, sector: u64) -> Result<SectorState, HddError> {
        self.check(sector)?;
        Ok(*self.states.get(&sector).unwrap_or(&SectorState::Good))
    }

    /// Marks a sector as carrying a latent defect. Idempotent for
    /// sectors already defective; remapped sectors stay remapped (the
    /// new physical sector can of course fail again — model that as a
    /// fresh defect, which this records).
    ///
    /// # Errors
    ///
    /// Returns [`HddError::SectorOutOfRange`] for addresses beyond the
    /// drive.
    pub fn corrupt(&mut self, sector: u64) -> Result<(), HddError> {
        self.check(sector)?;
        self.states.insert(sector, SectorState::LatentDefect);
        Ok(())
    }

    /// Scrub repair of one sector: the corrupted data is reconstructed
    /// from parity, written to a spare, and the sector mapped out.
    ///
    /// Returns `true` if the sector was defective (and is now remapped),
    /// `false` if it was already clean.
    ///
    /// # Errors
    ///
    /// * [`HddError::SectorOutOfRange`] for bad addresses.
    /// * [`HddError::SparesExhausted`] when no spares remain — on a
    ///   real drive this cascades into a SMART trip.
    pub fn scrub_repair(&mut self, sector: u64) -> Result<bool, HddError> {
        self.check(sector)?;
        match self.states.get(&sector) {
            Some(SectorState::LatentDefect) => {
                if self.spares_used >= self.spare_sectors {
                    return Err(HddError::SparesExhausted);
                }
                self.spares_used += 1;
                self.states.insert(sector, SectorState::Remapped);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Runs a full scrub pass: repairs every latent defect. Returns the
    /// number repaired.
    ///
    /// # Errors
    ///
    /// Returns [`HddError::SparesExhausted`] if the spare pool runs out
    /// mid-pass (repairs up to that point are kept).
    pub fn scrub_all(&mut self) -> Result<u64, HddError> {
        let defective: Vec<u64> = self
            .states
            .iter()
            .filter(|(_, s)| **s == SectorState::LatentDefect)
            .map(|(k, _)| *k)
            .collect();
        let mut repaired = 0;
        for sector in defective {
            self.scrub_repair(sector)?;
            repaired += 1;
        }
        Ok(repaired)
    }

    /// Number of sectors currently carrying latent defects.
    pub fn latent_defect_count(&self) -> u64 {
        self.states
            .values()
            .filter(|s| **s == SectorState::LatentDefect)
            .count() as u64
    }

    /// Number of sectors mapped out over the drive's life.
    pub fn remapped_count(&self) -> u64 {
        self.states
            .values()
            .filter(|s| **s == SectorState::Remapped)
            .count() as u64
    }

    /// Whether any latent defect exists — the condition that makes a
    /// simultaneous operational failure on another drive a DDF.
    pub fn has_latent_defect(&self) -> bool {
        self.states
            .values()
            .any(|s| *s == SectorState::LatentDefect)
    }

    fn check(&self, sector: u64) -> Result<(), HddError> {
        if sector >= self.total_sectors {
            Err(HddError::SectorOutOfRange {
                sector,
                total: self.total_sectors,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_drive_is_clean() {
        let m = DefectMap::new(1000, 10);
        assert_eq!(m.latent_defect_count(), 0);
        assert!(!m.has_latent_defect());
        assert_eq!(m.state(999).unwrap(), SectorState::Good);
    }

    #[test]
    fn corrupt_then_scrub_remaps() {
        let mut m = DefectMap::new(1000, 10);
        m.corrupt(42).unwrap();
        assert!(m.has_latent_defect());
        assert_eq!(m.state(42).unwrap(), SectorState::LatentDefect);
        assert!(m.scrub_repair(42).unwrap());
        assert_eq!(m.state(42).unwrap(), SectorState::Remapped);
        assert!(!m.has_latent_defect());
        assert_eq!(m.spares_remaining(), 9);
        assert_eq!(m.remapped_count(), 1);
    }

    #[test]
    fn scrub_of_clean_sector_is_noop() {
        let mut m = DefectMap::new(1000, 10);
        assert!(!m.scrub_repair(5).unwrap());
        assert_eq!(m.spares_remaining(), 10);
    }

    #[test]
    fn scrub_all_repairs_everything() {
        let mut m = DefectMap::new(1000, 10);
        for s in [1, 5, 9] {
            m.corrupt(s).unwrap();
        }
        assert_eq!(m.scrub_all().unwrap(), 3);
        assert_eq!(m.latent_defect_count(), 0);
        assert_eq!(m.remapped_count(), 3);
    }

    #[test]
    fn spares_exhaust() {
        let mut m = DefectMap::new(1000, 2);
        for s in [1, 2, 3] {
            m.corrupt(s).unwrap();
        }
        assert_eq!(m.scrub_all(), Err(HddError::SparesExhausted));
        // Two were repaired before exhaustion.
        assert_eq!(m.remapped_count(), 2);
        assert_eq!(m.latent_defect_count(), 1);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut m = DefectMap::new(10, 1);
        assert!(matches!(
            m.corrupt(10),
            Err(HddError::SectorOutOfRange {
                sector: 10,
                total: 10
            })
        ));
        assert!(m.state(11).is_err());
    }

    #[test]
    fn remapped_sector_can_fail_again() {
        let mut m = DefectMap::new(1000, 10);
        m.corrupt(7).unwrap();
        m.scrub_repair(7).unwrap();
        m.corrupt(7).unwrap();
        assert_eq!(m.state(7).unwrap(), SectorState::LatentDefect);
        assert!(m.scrub_repair(7).unwrap());
        assert_eq!(m.spares_remaining(), 8);
    }

    #[test]
    fn capacity_constructor_scales() {
        let m = DefectMap::for_capacity_bytes(500.0e9);
        assert_eq!(m.total_sectors(), (500.0e9 / 512.0) as u64);
        assert!(m.spares_remaining() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn zero_sector_drive_panics() {
        DefectMap::new(0, 0);
    }
}
