use std::fmt;

/// Errors from the HDD substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HddError {
    /// A drive specification field was missing or invalid.
    InvalidSpec {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A sector address was outside the drive's geometry.
    SectorOutOfRange {
        /// The requested sector.
        sector: u64,
        /// Total sectors on the drive.
        total: u64,
    },
    /// The spare-sector pool is exhausted; the drive can no longer remap.
    SparesExhausted,
}

impl fmt::Display for HddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HddError::InvalidSpec { field, reason } => {
                write!(f, "invalid drive spec field {field}: {reason}")
            }
            HddError::SectorOutOfRange { sector, total } => {
                write!(
                    f,
                    "sector {sector} out of range (drive has {total} sectors)"
                )
            }
            HddError::SparesExhausted => write!(f, "spare sector pool exhausted"),
        }
    }
}

impl std::error::Error for HddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HddError::SectorOutOfRange {
            sector: 10,
            total: 5,
        };
        assert!(e.to_string().contains("sector 10"));
        assert!(HddError::SparesExhausted.to_string().contains("spare"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HddError>();
    }
}
