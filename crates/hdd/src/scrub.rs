//! The scrub-time model of paper Section 6.4.
//!
//! Scrubbing is "essentially preventive maintenance on data errors": a
//! background pass that reads every block, checks it against parity, and
//! rewrites (or remaps) anything inconsistent. The time from a latent
//! defect's creation to its correction is a random variable whose
//! minimum is set by a full media pass at the scrub rate, and whose
//! spread depends on foreground I/O. The paper models it as a
//! three-parameter Weibull with `β = 3` ("produces a Normal shaped
//! distribution after the delay set by the location parameter").

use crate::restore::Capped;
use crate::DriveSpec;
use raidsim_dists::{DistError, LifeDistribution, Weibull3};
use serde::{Deserialize, Serialize};

/// Minimum hours for one complete scrub pass of a drive, given the
/// fraction of bandwidth the scrubber may use.
///
/// Scrubbing is per-drive sequential reading at the drive's sustained
/// rate, throttled to `scrub_bandwidth_fraction` so it "does not impede
/// performance".
///
/// # Panics
///
/// Panics if `scrub_bandwidth_fraction` is not in `(0, 1]`.
pub fn minimum_scrub_hours(drive: &DriveSpec, scrub_bandwidth_fraction: f64) -> f64 {
    assert!(
        scrub_bandwidth_fraction > 0.0 && scrub_bandwidth_fraction <= 1.0,
        "scrub bandwidth fraction must be in (0, 1]"
    );
    drive.full_pass_hours() / scrub_bandwidth_fraction
}

/// Scrub policy for a RAID group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScrubPolicy {
    /// No scrubbing: latent defects persist until the drive itself is
    /// replaced. The paper's "recipe for disaster" configuration.
    Disabled,
    /// Background scrubbing with the given characteristic duration.
    Background {
        /// Delay before any defect can be corrected (location γ, hours).
        /// The paper's Table 2 uses 6 h.
        min_hours: f64,
        /// Characteristic scrub interval (η, hours): 12/48/168/336 in
        /// the paper's Figure 9 sweep.
        characteristic_hours: f64,
        /// Optional OS-enforced maximum ("The operating system may
        /// invoke a maximum time to complete scrubbing").
        max_hours: Option<f64>,
    },
}

impl ScrubPolicy {
    /// Shape parameter used for all scrub distributions ("In all cases
    /// the shape parameter, β, is 3").
    pub const SHAPE: f64 = 3.0;

    /// The paper's base case: γ = 6 h, η = 168 h (one week), no cap.
    pub fn paper_base_case() -> Self {
        ScrubPolicy::Background {
            min_hours: 6.0,
            characteristic_hours: 168.0,
            max_hours: None,
        }
    }

    /// A background policy with the given characteristic duration and
    /// the base-case 6-hour minimum — the knob Figure 9 sweeps.
    pub fn with_characteristic_hours(hours: f64) -> Self {
        ScrubPolicy::Background {
            min_hours: 6.0,
            characteristic_hours: hours,
            max_hours: None,
        }
    }

    /// Builds the time-to-scrub distribution, or `None` when scrubbing
    /// is disabled.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for out-of-domain
    /// parameters.
    pub fn distribution(&self) -> Result<Option<Box<dyn LifeDistribution>>, DistError> {
        match *self {
            ScrubPolicy::Disabled => Ok(None),
            ScrubPolicy::Background {
                min_hours,
                characteristic_hours,
                max_hours,
            } => {
                let w = Weibull3::new(min_hours, characteristic_hours, Self::SHAPE)?;
                let d: Box<dyn LifeDistribution> = match max_hours {
                    Some(cap) => Box::new(Capped::new(Box::new(w), cap)?),
                    None => Box::new(w),
                };
                Ok(Some(d))
            }
        }
    }

    /// Whether scrubbing is enabled.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, ScrubPolicy::Disabled)
    }
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        Self::paper_base_case()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_scrub_pass_for_paper_drives() {
        // 500 GB at 50 MB/s full rate = 2.78 h; at 10% bandwidth = 27.8 h.
        let sata = DriveSpec::paper_sata();
        let full = minimum_scrub_hours(&sata, 1.0);
        assert!((full - 2.7778).abs() < 1e-3, "full = {full}");
        let throttled = minimum_scrub_hours(&sata, 0.1);
        assert!((throttled - 27.778).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "scrub bandwidth fraction")]
    fn zero_bandwidth_panics() {
        minimum_scrub_hours(&DriveSpec::paper_sata(), 0.0);
    }

    #[test]
    fn base_case_distribution_matches_table2() {
        let d = ScrubPolicy::paper_base_case()
            .distribution()
            .unwrap()
            .unwrap();
        assert_eq!(d.cdf(5.9), 0.0); // gamma = 6
                                     // F(6 + 168) = 1 - 1/e.
        assert!((d.cdf(174.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn disabled_policy_has_no_distribution() {
        assert!(ScrubPolicy::Disabled.distribution().unwrap().is_none());
        assert!(!ScrubPolicy::Disabled.is_enabled());
        assert!(ScrubPolicy::paper_base_case().is_enabled());
    }

    #[test]
    fn figure9_sweep_means_are_ordered() {
        let mut last = 0.0;
        for eta in [12.0, 48.0, 168.0, 336.0] {
            let d = ScrubPolicy::with_characteristic_hours(eta)
                .distribution()
                .unwrap()
                .unwrap();
            let m = d.mean();
            assert!(m > last, "eta = {eta}, mean = {m}");
            last = m;
        }
    }

    #[test]
    fn capped_scrub_completes_by_cap() {
        let p = ScrubPolicy::Background {
            min_hours: 6.0,
            characteristic_hours: 168.0,
            max_hours: Some(336.0),
        };
        let d = p.distribution().unwrap().unwrap();
        assert_eq!(d.cdf(336.0), 1.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let p = ScrubPolicy::Background {
            min_hours: -1.0,
            characteristic_hours: 168.0,
            max_hours: None,
        };
        assert!(p.distribution().is_err());
    }
}
