use crate::units::{Capacity, DataRate};
use crate::{HddError, Interface};
use serde::{Deserialize, Serialize};

/// Physical specification of a hard disk drive model.
///
/// Collects the quantities the paper's restore and scrub models need:
/// capacity, interface (bus), and sustained media transfer rate.
///
/// Construct via [`DriveSpec::builder`]; ready-made specs for the
/// paper's two worked examples are available as [`DriveSpec::paper_fc`]
/// and [`DriveSpec::paper_sata`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveSpec {
    model: String,
    capacity: Capacity,
    interface: Interface,
    sustained_rate: DataRate,
    rpm: u32,
}

impl DriveSpec {
    /// Starts building a drive spec for the given model name.
    pub fn builder(model: impl Into<String>) -> DriveSpecBuilder {
        DriveSpecBuilder {
            model: model.into(),
            capacity: None,
            interface: None,
            sustained_rate: None,
            rpm: 10_000,
        }
    }

    /// The paper's Fibre Channel example: 144 GB on a 2 Gb/s FC loop
    /// (Section 6.2).
    pub fn paper_fc() -> Self {
        DriveSpec::builder("144GB-FC")
            .capacity(Capacity::from_gb(144.0))
            .interface(Interface::FibreChannel2G)
            .sustained_rate(DataRate::from_mb_per_s(50.0))
            .rpm(10_000)
            .build()
            .expect("paper FC spec is valid")
    }

    /// The paper's SATA example: 500 GB on a 1.5 Gb/s bus (Section 6.2).
    pub fn paper_sata() -> Self {
        DriveSpec::builder("500GB-SATA")
            .capacity(Capacity::from_gb(500.0))
            .interface(Interface::SataI)
            .sustained_rate(DataRate::from_mb_per_s(50.0))
            .rpm(7_200)
            .build()
            .expect("paper SATA spec is valid")
    }

    /// Model name.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Formatted capacity.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Host interface.
    pub fn interface(&self) -> Interface {
        self.interface
    }

    /// Sustained media transfer rate (single drive, sequential).
    pub fn sustained_rate(&self) -> DataRate {
        self.sustained_rate
    }

    /// Spindle speed in revolutions per minute.
    pub fn rpm(&self) -> u32 {
        self.rpm
    }

    /// Hours for one full sequential pass over the media with no
    /// contention — the drive-bound lower bound on both reconstruction
    /// and a scrub pass.
    pub fn full_pass_hours(&self) -> f64 {
        self.sustained_rate.hours_to_transfer(self.capacity)
    }
}

/// Builder for [`DriveSpec`] (see `C-BUILDER`).
#[derive(Debug, Clone)]
pub struct DriveSpecBuilder {
    model: String,
    capacity: Option<Capacity>,
    interface: Option<Interface>,
    sustained_rate: Option<DataRate>,
    rpm: u32,
}

impl DriveSpecBuilder {
    /// Sets the formatted capacity (required).
    pub fn capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the host interface (required).
    pub fn interface(mut self, interface: Interface) -> Self {
        self.interface = Some(interface);
        self
    }

    /// Sets the sustained media rate. Defaults to the interface's
    /// typical drive rate if not set.
    pub fn sustained_rate(mut self, rate: DataRate) -> Self {
        self.sustained_rate = Some(rate);
        self
    }

    /// Sets the spindle speed (default 10,000 rpm).
    pub fn rpm(mut self, rpm: u32) -> Self {
        self.rpm = rpm;
        self
    }

    /// Builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`HddError::InvalidSpec`] if capacity or interface are
    /// missing, or if any numeric field is non-positive.
    pub fn build(self) -> Result<DriveSpec, HddError> {
        let capacity = self.capacity.ok_or(HddError::InvalidSpec {
            field: "capacity",
            reason: "required".into(),
        })?;
        if capacity.bytes() <= 0.0 {
            return Err(HddError::InvalidSpec {
                field: "capacity",
                reason: format!("must be positive, got {capacity}"),
            });
        }
        let interface = self.interface.ok_or(HddError::InvalidSpec {
            field: "interface",
            reason: "required".into(),
        })?;
        let sustained_rate = self
            .sustained_rate
            .unwrap_or_else(|| interface.typical_drive_rate());
        if sustained_rate.bytes_per_s() <= 0.0 {
            return Err(HddError::InvalidSpec {
                field: "sustained_rate",
                reason: format!("must be positive, got {sustained_rate}"),
            });
        }
        if self.rpm == 0 {
            return Err(HddError::InvalidSpec {
                field: "rpm",
                reason: "must be positive".into(),
            });
        }
        Ok(DriveSpec {
            model: self.model,
            capacity,
            interface,
            sustained_rate,
            rpm: self.rpm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_capacity_and_interface() {
        assert!(matches!(
            DriveSpec::builder("x").build(),
            Err(HddError::InvalidSpec {
                field: "capacity",
                ..
            })
        ));
        assert!(matches!(
            DriveSpec::builder("x")
                .capacity(Capacity::from_gb(100.0))
                .build(),
            Err(HddError::InvalidSpec {
                field: "interface",
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_nonpositive_values() {
        assert!(DriveSpec::builder("x")
            .capacity(Capacity::from_gb(-1.0))
            .interface(Interface::SataI)
            .build()
            .is_err());
        assert!(DriveSpec::builder("x")
            .capacity(Capacity::from_gb(1.0))
            .interface(Interface::SataI)
            .rpm(0)
            .build()
            .is_err());
    }

    #[test]
    fn default_rate_comes_from_interface() {
        let d = DriveSpec::builder("x")
            .capacity(Capacity::from_gb(100.0))
            .interface(Interface::FibreChannel2G)
            .build()
            .unwrap();
        assert_eq!(
            d.sustained_rate().mb_per_s(),
            Interface::FibreChannel2G.typical_drive_rate().mb_per_s()
        );
    }

    #[test]
    fn paper_specs_match_section_6_2() {
        let fc = DriveSpec::paper_fc();
        assert_eq!(fc.capacity().gb(), 144.0);
        assert_eq!(fc.interface(), Interface::FibreChannel2G);
        let sata = DriveSpec::paper_sata();
        assert_eq!(sata.capacity().gb(), 500.0);
        assert_eq!(sata.interface(), Interface::SataI);
    }

    #[test]
    fn full_pass_hours() {
        // 144 GB at 50 MB/s = 2880 s = 0.8 h.
        let fc = DriveSpec::paper_fc();
        assert!((fc.full_pass_hours() - 0.8).abs() < 1e-9);
    }
}
