//! SMART trip model.
//!
//! "Data reallocations are expected and many spare sectors are available
//! on each HDD, but an excessive number in a specific time interval will
//! exceed the SMART threshold, resulting in a SMART trip" (paper
//! Section 3.1). In the state model this is the transition from the
//! latent-defect state directly to an operational failure ("massive
//! media problems render the HDD inoperative"); its frequency is folded
//! into the operational failure distribution, but the mechanism is
//! modeled here so failure-injection tests and the mode catalog can
//! attribute failures to SMART trips.

use serde::{Deserialize, Serialize};

/// SMART monitoring configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartConfig {
    /// Number of reallocation events within the window that trips the
    /// monitor.
    pub realloc_threshold: u32,
    /// Sliding window length, in hours.
    pub window_hours: f64,
}

impl Default for SmartConfig {
    fn default() -> Self {
        // A representative mid-2000s firmware policy: 64 grown defects
        // within a week trips the drive.
        Self {
            realloc_threshold: 64,
            window_hours: 168.0,
        }
    }
}

/// Sliding-window SMART monitor for one drive.
///
/// Feed reallocation events in nondecreasing time order with
/// [`SmartMonitor::record`]; the first event that brings the in-window
/// count to the threshold returns a [`SmartTrip`].
///
/// # Example
///
/// ```
/// use raidsim_hdd::smart::{SmartConfig, SmartMonitor};
///
/// let mut m = SmartMonitor::new(SmartConfig { realloc_threshold: 3, window_hours: 10.0 });
/// assert!(m.record(1.0).is_none());
/// assert!(m.record(2.0).is_none());
/// let trip = m.record(3.0).expect("third event within 10 h trips");
/// assert_eq!(trip.at_hours, 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SmartMonitor {
    config: SmartConfig,
    window: std::collections::VecDeque<f64>,
    tripped: Option<SmartTrip>,
}

/// A SMART trip event: the drive is proactively retired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartTrip {
    /// Simulation time of the trip, in hours.
    pub at_hours: f64,
    /// Number of reallocations inside the window at trip time.
    pub events_in_window: u32,
}

impl SmartMonitor {
    /// Creates a monitor with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero or the window non-positive.
    pub fn new(config: SmartConfig) -> Self {
        assert!(config.realloc_threshold > 0, "threshold must be positive");
        assert!(
            config.window_hours > 0.0 && config.window_hours.is_finite(),
            "window must be positive"
        );
        Self {
            config,
            window: std::collections::VecDeque::new(),
            tripped: None,
        }
    }

    /// Records a reallocation at time `t` (hours). Returns the trip if
    /// this event crosses the threshold. After a trip the monitor is
    /// latched and further events return `None`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than a previously recorded event.
    pub fn record(&mut self, t: f64) -> Option<SmartTrip> {
        if self.tripped.is_some() {
            return None;
        }
        if let Some(&last) = self.window.back() {
            assert!(t >= last, "events must arrive in time order");
        }
        self.window.push_back(t);
        while let Some(&front) = self.window.front() {
            if t - front > self.config.window_hours {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if self.window.len() as u32 >= self.config.realloc_threshold {
            let trip = SmartTrip {
                at_hours: t,
                events_in_window: self.window.len() as u32,
            };
            self.tripped = Some(trip);
            return Some(trip);
        }
        None
    }

    /// The trip, if the monitor has latched.
    pub fn trip(&self) -> Option<SmartTrip> {
        self.tripped
    }

    /// Current number of events inside the window.
    pub fn events_in_window(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, window: f64) -> SmartConfig {
        SmartConfig {
            realloc_threshold: threshold,
            window_hours: window,
        }
    }

    #[test]
    fn trips_at_threshold_within_window() {
        let mut m = SmartMonitor::new(cfg(3, 10.0));
        assert!(m.record(0.0).is_none());
        assert!(m.record(5.0).is_none());
        let trip = m.record(9.0).unwrap();
        assert_eq!(trip.events_in_window, 3);
        assert_eq!(trip.at_hours, 9.0);
    }

    #[test]
    fn does_not_trip_when_events_spread_out() {
        let mut m = SmartMonitor::new(cfg(3, 10.0));
        for i in 0..20 {
            assert!(
                m.record(i as f64 * 6.0).is_none(),
                "event {i} should not trip (only 2 ever in window)"
            );
        }
        assert!(m.trip().is_none());
    }

    #[test]
    fn window_slides_correctly() {
        let mut m = SmartMonitor::new(cfg(3, 10.0));
        m.record(0.0);
        m.record(1.0);
        // 12.0 evicts both earlier events (gap > 10).
        assert!(m.record(12.0).is_none());
        assert_eq!(m.events_in_window(), 1);
        m.record(13.0);
        assert!(m.record(14.0).is_some());
    }

    #[test]
    fn latched_after_trip() {
        let mut m = SmartMonitor::new(cfg(2, 10.0));
        m.record(0.0);
        assert!(m.record(1.0).is_some());
        assert!(m.record(2.0).is_none());
        assert!(m.trip().is_some());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order_events() {
        let mut m = SmartMonitor::new(cfg(5, 10.0));
        m.record(5.0);
        m.record(4.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_zero_threshold() {
        SmartMonitor::new(cfg(0, 10.0));
    }

    #[test]
    fn burst_of_reallocations_trips_default_policy() {
        // "a sudden burst of media defects on a single HDD" — the state
        // 2 -> 4 transition of Figure 4.
        let mut m = SmartMonitor::new(SmartConfig::default());
        let mut tripped = false;
        for i in 0..64 {
            if m.record(1000.0 + i as f64 * 0.01).is_some() {
                tripped = true;
            }
        }
        assert!(tripped);
    }
}
