//! The restore-time model of paper Section 6.2.
//!
//! "A constant restoration rate implies the probability of completing
//! the restoration in any time interval is equally as likely as any
//! other interval of equal length. But this is clearly unrealistic" —
//! reconstruction must read every surviving drive in the group and write
//! the replacement, over a shared bus, so there is a hard minimum time.
//! This module computes that minimum from the physical drive/bus
//! parameters and builds the three-parameter Weibull restore
//! distribution (location = minimum time), plus the optional OS-enforced
//! maximum via [`Capped`].

use crate::DriveSpec;
use raidsim_dists::{DistError, LifeDistribution, Weibull3};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Minimum hours to reconstruct one failed drive in a group of
/// `group_size` drives with **no** foreground I/O.
///
/// Reconstruction reads the `group_size − 1` surviving drives and writes
/// the replacement. Two bounds apply:
///
/// * **bus-bound**: all `group_size` drive-images cross the shared bus
///   once: `group_size × capacity / bus_rate`;
/// * **drive-bound**: the replacement must absorb a full image at its
///   sustained rate: `capacity / drive_rate`.
///
/// The minimum restore time is the larger bound. For the paper's worked
/// examples this gives ≈2.2 h for 14×144 GB on 2 Gb/s FC (the paper
/// quotes "a minimum of three hours", which includes protocol overhead)
/// and 10.4 h for 14×500 GB on 1.5 Gb/s SATA (matching the paper
/// exactly).
///
/// # Panics
///
/// Panics if `group_size < 2` — RAID needs at least two drives.
pub fn minimum_restore_hours(drive: &DriveSpec, group_size: usize) -> f64 {
    assert!(group_size >= 2, "a RAID group needs at least 2 drives");
    let bus_hours = drive
        .interface()
        .bus_rate()
        .hours_to_transfer(drive.capacity())
        * group_size as f64;
    let drive_hours = drive.full_pass_hours();
    bus_hours.max(drive_hours)
}

/// Configuration for building a restore-time distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestoreModel {
    /// Number of drives in the RAID group (including parity).
    pub group_size: usize,
    /// Fraction of bus/drive bandwidth consumed by foreground I/O during
    /// reconstruction (0 = idle array). Stretches the minimum time by
    /// `1 / (1 − fraction)`.
    pub foreground_io: f64,
    /// Weibull shape for the variability beyond the minimum. The paper
    /// uses `β = 2` ("generates a right-skewed distribution").
    pub shape: f64,
    /// Characteristic life (hours beyond zero, i.e. the η of the
    /// three-parameter Weibull). The paper's base case uses 12 h.
    pub characteristic_life: f64,
    /// Optional OS-enforced maximum restore time, in hours ("Some
    /// operating systems place a limit on the amount of I/O that takes
    /// place during reconstruction, thereby assuring reconstruction will
    /// complete in a prescribed amount of time").
    pub max_hours: Option<f64>,
}

impl RestoreModel {
    /// The paper's base-case restore model: minimum 6 h, `η = 12`,
    /// `β = 2`, no cap (Table 2).
    pub fn paper_base_case() -> Self {
        Self {
            group_size: 8,
            foreground_io: 0.0,
            shape: 2.0,
            characteristic_life: 12.0,
            max_hours: None,
        }
    }

    /// The uncapped three-parameter Weibull for a specific drive, with
    /// the location parameter derived from the physical minimum restore
    /// time (stretched by foreground I/O). Use this when the concrete
    /// type is needed (e.g. to share via `Arc<Weibull3>`);
    /// [`RestoreModel::distribution_for`] additionally applies the
    /// optional cap.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if the model fields are
    /// out of domain (`foreground_io ≥ 1`, non-positive shape or scale).
    pub fn weibull_for(&self, drive: &DriveSpec) -> Result<Weibull3, DistError> {
        if !(0.0..1.0).contains(&self.foreground_io) {
            return Err(DistError::InvalidParameter {
                name: "foreground_io",
                value: self.foreground_io,
                constraint: "must be in [0, 1)",
            });
        }
        let min = minimum_restore_hours(drive, self.group_size) / (1.0 - self.foreground_io);
        Weibull3::new(min, self.characteristic_life, self.shape)
    }

    /// Builds the restore distribution for a specific drive, deriving
    /// the location parameter from the physical minimum restore time
    /// (stretched by foreground I/O) and applying the optional
    /// OS-enforced cap.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if the model fields are
    /// out of domain (`foreground_io ≥ 1`, non-positive shape or scale).
    pub fn distribution_for(
        &self,
        drive: &DriveSpec,
    ) -> Result<Box<dyn LifeDistribution>, DistError> {
        let w = self.weibull_for(drive)?;
        Ok(match self.max_hours {
            Some(cap) => Box::new(Capped::new(Box::new(w), cap)?),
            None => Box::new(w),
        })
    }

    /// Builds the paper's Table 2 restore distribution (γ = 6, η = 12,
    /// β = 2) without reference to a physical drive.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for out-of-domain fields.
    pub fn table2_distribution(&self) -> Result<Box<dyn LifeDistribution>, DistError> {
        let w = Weibull3::new(6.0, self.characteristic_life, self.shape)?;
        Ok(match self.max_hours {
            Some(cap) => Box::new(Capped::new(Box::new(w), cap)?),
            None => Box::new(w),
        })
    }
}

impl Default for RestoreModel {
    fn default() -> Self {
        Self::paper_base_case()
    }
}

/// A lifetime capped at a deterministic maximum: `min(T, cap)`.
///
/// Models an OS-enforced reconstruction (or scrub) deadline. The capped
/// variable has CDF `F(t)` below the cap and jumps to 1 at the cap; its
/// mean is `∫₀^cap S(t) dt`.
#[derive(Debug)]
pub struct Capped {
    inner: Box<dyn LifeDistribution>,
    cap: f64,
}

impl Capped {
    /// Wraps `inner`, capping samples at `cap` hours.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `cap` is not finite
    /// and positive.
    pub fn new(inner: Box<dyn LifeDistribution>, cap: f64) -> Result<Self, DistError> {
        if !cap.is_finite() || cap <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "cap",
                value: cap,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { inner, cap })
    }

    /// The cap, in hours.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// A view of the uncapped distribution.
    pub fn inner(&self) -> &dyn LifeDistribution {
        self.inner.as_ref()
    }
}

impl LifeDistribution for Capped {
    fn cdf(&self, t: f64) -> f64 {
        if t >= self.cap {
            1.0
        } else {
            self.inner.cdf(t)
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        // There is an atom at the cap; the density is only defined below
        // it. Above the cap the density is zero.
        if t >= self.cap {
            0.0
        } else {
            self.inner.pdf(t)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.inner.quantile(0.0).min(self.cap);
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        self.inner.quantile(p).min(self.cap)
    }

    fn mean(&self) -> f64 {
        // E[min(T, cap)] = integral_0^cap S(t) dt; trapezoid on a fine
        // fixed grid (the integrand is bounded and smooth).
        let steps = 20_000;
        let h = self.cap / steps as f64;
        let mut total = 0.0;
        let mut s_prev = self.inner.sf(0.0);
        for i in 1..=steps {
            let s = self.inner.sf(i as f64 * h);
            total += 0.5 * (s_prev + s) * h;
            s_prev = s;
        }
        total
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.inner.sample(rng).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_sata_example_is_10_4_hours() {
        let t = minimum_restore_hours(&DriveSpec::paper_sata(), 14);
        assert!((t - 10.37).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn paper_fc_example_is_roughly_three_hours() {
        // Raw bus-bound number is 2.24 h; the paper rounds up to "a
        // minimum of three hours" including overheads.
        let t = minimum_restore_hours(&DriveSpec::paper_fc(), 14);
        assert!(t > 2.0 && t < 3.0, "t = {t}");
    }

    #[test]
    fn small_groups_are_drive_bound() {
        // 2-drive mirror on a fast bus: the replacement drive's own
        // write rate binds.
        let d = DriveSpec::builder("fast-bus")
            .capacity(crate::units::Capacity::from_gb(144.0))
            .interface(crate::Interface::FibreChannel4G)
            .sustained_rate(crate::units::DataRate::from_mb_per_s(50.0))
            .build()
            .unwrap();
        let t = minimum_restore_hours(&d, 2);
        assert!((t - d.full_pass_hours()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 drives")]
    fn group_of_one_panics() {
        minimum_restore_hours(&DriveSpec::paper_fc(), 1);
    }

    #[test]
    fn foreground_io_stretches_minimum() {
        let drive = DriveSpec::paper_sata();
        let idle = RestoreModel {
            group_size: 14,
            ..RestoreModel::paper_base_case()
        };
        let busy = RestoreModel {
            group_size: 14,
            foreground_io: 0.5,
            ..RestoreModel::paper_base_case()
        };
        let d_idle = idle.distribution_for(&drive).unwrap();
        let d_busy = busy.distribution_for(&drive).unwrap();
        // The busy array cannot possibly finish before 2x the idle min.
        assert!(d_idle.cdf(15.0) > 0.0);
        assert_eq!(d_busy.cdf(15.0), 0.0);
    }

    #[test]
    fn rejects_full_foreground_io() {
        let m = RestoreModel {
            foreground_io: 1.0,
            ..RestoreModel::paper_base_case()
        };
        assert!(m.distribution_for(&DriveSpec::paper_sata()).is_err());
    }

    #[test]
    fn table2_distribution_matches_paper_parameters() {
        let d = RestoreModel::paper_base_case()
            .table2_distribution()
            .unwrap();
        assert_eq!(d.cdf(5.9), 0.0); // gamma = 6
        assert!((d.cdf(18.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12); // eta = 12
    }

    #[test]
    fn capped_samples_never_exceed_cap() {
        let w = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let c = Capped::new(Box::new(w), 24.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(c.sample(&mut rng) <= 24.0);
        }
    }

    #[test]
    fn capped_cdf_jumps_to_one_at_cap() {
        let w = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let c = Capped::new(Box::new(w), 24.0).unwrap();
        assert!(c.cdf(23.999) < 1.0);
        assert_eq!(c.cdf(24.0), 1.0);
        assert_eq!(c.quantile(0.9999), c.quantile(0.9999).min(24.0));
    }

    #[test]
    fn capped_mean_is_below_uncapped_mean() {
        let w = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let uncapped_mean = w.mean();
        let c = Capped::new(Box::new(w), 15.0).unwrap();
        assert!(c.mean() < uncapped_mean);
        // And matches Monte Carlo.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 100_000;
        let mc: f64 = (0..n).map(|_| c.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mc - c.mean()).abs() < 0.02,
            "mc = {mc}, quad = {}",
            c.mean()
        );
    }

    #[test]
    fn capped_rejects_bad_cap() {
        let w = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        assert!(Capped::new(Box::new(w), 0.0).is_err());
    }

    #[test]
    fn restore_model_with_cap_produces_capped_distribution() {
        let m = RestoreModel {
            max_hours: Some(24.0),
            ..RestoreModel::paper_base_case()
        };
        let d = m.table2_distribution().unwrap();
        assert_eq!(d.cdf(24.0), 1.0);
    }
}
