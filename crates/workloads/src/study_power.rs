//! Field-study power analysis.
//!
//! The paper's conclusions rest on resolving Weibull shapes from field
//! studies ("HDD failure rates are rarely constant"). How large must a
//! study be to support such a claim? This module answers the design
//! question with the standard asymptotics of the censored Weibull MLE:
//! the shape estimate satisfies `Var(β̂) ≈ c·β²/r` with `r` the failure
//! count (the constant `c ≈ 0.61` for complete samples, larger under
//! heavy Type-I censoring; we use the conservative heavy-censoring
//! value 1.0, validated against simulation in the tests).

use raidsim_dists::{DistError, LifeDistribution, Weibull3};
use serde::{Deserialize, Serialize};

/// Variance inflation constant for `Var(β̂) = C·β²/r` under heavy
/// Type-I censoring. The complete-sample value is 0.61; simulation at
/// the failure fractions of the paper's studies (2–5% of the
/// population failing inside the window) gives ~1.5, so 2.0 is used as
/// a conservative design value (validated by the
/// `recommendation_actually_achieves_the_precision` test).
pub const SHAPE_VARIANCE_FACTOR: f64 = 2.0;

/// A study design recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerResult {
    /// Failures required to reach the target precision.
    pub failures_needed: u64,
    /// Drives to enroll given the window and the assumed distribution.
    pub drives_needed: u64,
    /// Expected fraction of the population failing inside the window.
    pub expected_failure_fraction: f64,
}

/// Failures needed so that a `confidence`-level interval for `β` has
/// relative half-width `rel_precision` (e.g. `0.1` = ±10%).
///
/// Uses the normal asymptotics `β̂ ~ N(β, C·β²/r)` with the
/// conservative censored-sample `C = 1`:
/// `r = C·(z / rel_precision)²`.
///
/// # Panics
///
/// Panics if `rel_precision` is not in `(0, 1)` or `confidence` not in
/// `(0, 1)`.
pub fn failures_needed(rel_precision: f64, confidence: f64) -> u64 {
    assert!(
        rel_precision > 0.0 && rel_precision < 1.0,
        "relative precision must be in (0, 1)"
    );
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let z = raidsim_dists::special::inv_std_normal(0.5 + confidence / 2.0);
    (SHAPE_VARIANCE_FACTOR * (z / rel_precision).powi(2)).ceil() as u64
}

/// The relative half-width on `β` achievable from a study that
/// observed `failures` exact failures (the inverse of
/// [`failures_needed`]).
///
/// # Panics
///
/// Panics if `failures == 0` or `confidence` is not in `(0, 1)`.
pub fn achievable_precision(failures: u64, confidence: f64) -> f64 {
    assert!(failures > 0, "need at least one failure");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let z = raidsim_dists::special::inv_std_normal(0.5 + confidence / 2.0);
    z * (SHAPE_VARIANCE_FACTOR / failures as f64).sqrt()
}

/// Sizes a field study: how many drives must run for `window_hours` to
/// resolve the shape of `assumed` to ±`rel_precision` at `confidence`.
///
/// # Errors
///
/// Returns [`DistError::InvalidParameter`] if the assumed distribution
/// produces (essentially) no failures inside the window.
///
/// # Example
///
/// ```
/// use raidsim_dists::Weibull3;
/// use raidsim_workloads::study_power::design_study;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // Resolve the base-case beta = 1.12 to within ±15% at 90%:
/// let assumed = Weibull3::two_param(461_386.0, 1.12)?;
/// let plan = design_study(&assumed, 6_000.0, 0.15, 0.90)?;
/// // Roughly the scale of the paper's studies (tens of thousands).
/// assert!(plan.drives_needed > 5_000 && plan.drives_needed < 50_000);
/// # Ok(())
/// # }
/// ```
pub fn design_study(
    assumed: &Weibull3,
    window_hours: f64,
    rel_precision: f64,
    confidence: f64,
) -> Result<PowerResult, DistError> {
    let frac = assumed.cdf(window_hours);
    if frac <= 1e-12 {
        return Err(DistError::InvalidParameter {
            name: "window_hours",
            value: window_hours,
            constraint: "window produces no failures under the assumed distribution",
        });
    }
    let failures = failures_needed(rel_precision, confidence);
    Ok(PowerResult {
        failures_needed: failures,
        drives_needed: (failures as f64 / frac).ceil() as u64,
        expected_failure_fraction: frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::empirical::Observation;
    use raidsim_dists::fit::mle;
    use raidsim_dists::rng::stream;

    #[test]
    fn tighter_precision_needs_more_failures() {
        let loose = failures_needed(0.2, 0.90);
        let tight = failures_needed(0.05, 0.90);
        assert!(tight > 10 * loose, "loose = {loose}, tight = {tight}");
        // r scales as 1/precision^2.
        assert!((tight as f64 / loose as f64 - 16.0).abs() < 2.0);
    }

    #[test]
    fn higher_confidence_needs_more_failures() {
        assert!(failures_needed(0.1, 0.99) > failures_needed(0.1, 0.80));
    }

    #[test]
    fn paper_scale_studies_resolve_vintage_shapes() {
        // Figure 2's vintage 2 observed 992 failures: that resolves
        // beta to better than ±10% at 90% — consistent with the
        // published 4-digit betas being meaningful, while vintage 1's
        // 198 failures only support ~±17%.
        assert!(achievable_precision(992, 0.90) < 0.10);
        assert!(achievable_precision(198, 0.90) > 0.12);

        // And the forward direction: a ±10% design lands at the
        // paper's study scale (tens of thousands of drives).
        let v2 = Weibull3::two_param(125_660.0, 1.2162).unwrap();
        let plan = design_study(&v2, 6_000.0, 0.10, 0.90).unwrap();
        assert!(
            plan.drives_needed > 5_000 && plan.drives_needed < 50_000,
            "plan = {plan:?}"
        );
    }

    #[test]
    fn recommendation_actually_achieves_the_precision() {
        // Monte Carlo check: run the recommended study many times and
        // verify the beta estimate spread matches the target.
        let truth = Weibull3::two_param(50_000.0, 1.4).unwrap();
        let window = 6_000.0;
        let target = 0.15;
        let plan = design_study(&truth, window, target, 0.90).unwrap();
        let mut betas = Vec::new();
        for rep in 0..40 {
            let mut rng = stream(900, rep);
            let data: Vec<Observation> = (0..plan.drives_needed)
                .map(|_| {
                    let t = truth.sample(&mut rng);
                    if t <= window {
                        Observation::failure(t)
                    } else {
                        Observation::censored(window)
                    }
                })
                .collect();
            betas.push(mle(&data).unwrap().beta);
        }
        let mean = betas.iter().sum::<f64>() / betas.len() as f64;
        let sd = (betas.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / (betas.len() - 1) as f64)
            .sqrt();
        // 90% half-width = 1.645 sd; must be at or under the target
        // (the variance factor is conservative, so typically under).
        let achieved = 1.645 * sd / mean;
        assert!(
            achieved <= target * 1.2,
            "achieved ±{achieved:.3}, target ±{target}"
        );
    }

    #[test]
    fn impossible_window_is_rejected() {
        let d = Weibull3::new(10_000.0, 1.0e6, 3.0).unwrap(); // location beyond window
        assert!(design_study(&d, 6_000.0, 0.1, 0.9).is_err());
    }

    #[test]
    #[should_panic(expected = "relative precision")]
    fn bad_precision_panics() {
        failures_needed(0.0, 0.9);
    }
}
