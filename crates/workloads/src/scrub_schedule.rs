//! Periodic fleet-scrub semantics — the ablation alternative to the
//! paper's per-defect exposure clock.
//!
//! The paper samples an independent `TTScrub` for every defect ("the
//! scrub time may be as short as the maximum HDD and data-bus transfer
//! rates permit, or may be as long as weeks"). Real filers instead run
//! a scrub *pass* on a fixed cadence: a defect created at a uniformly
//! random phase of the cycle waits for the next pass boundary plus the
//! pass duration. [`PeriodicScrub`] models that exposure time exactly
//! (uniform over `[pass, period + pass]`), so the `exp_scrub_semantics`
//! ablation can quantify how much the semantic choice matters.

use raidsim_dists::{DistError, LifeDistribution};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Time from defect creation to correction under a periodic scrub pass:
/// uniform on `[pass_hours, period_hours + pass_hours]`.
///
/// # Example
///
/// ```
/// use raidsim_dists::LifeDistribution;
/// use raidsim_workloads::scrub_schedule::PeriodicScrub;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // Weekly pass, each pass takes 6 hours to cover the drive.
/// let s = PeriodicScrub::new(168.0, 6.0)?;
/// assert_eq!(s.cdf(5.0), 0.0);           // nothing before one pass time
/// assert_eq!(s.cdf(174.0), 1.0);         // everything within period+pass
/// assert!((s.mean() - 90.0).abs() < 1e-9); // pass + period/2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicScrub {
    period_hours: f64,
    pass_hours: f64,
}

impl PeriodicScrub {
    /// Creates a periodic scrub exposure model with pass cadence
    /// `period_hours` and per-pass duration `pass_hours`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if either value is
    /// non-finite, the period non-positive, or the pass negative.
    pub fn new(period_hours: f64, pass_hours: f64) -> Result<Self, DistError> {
        if !period_hours.is_finite() || period_hours <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "period_hours",
                value: period_hours,
                constraint: "must be finite and > 0",
            });
        }
        if !pass_hours.is_finite() || pass_hours < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "pass_hours",
                value: pass_hours,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self {
            period_hours,
            pass_hours,
        })
    }

    /// The scrub cadence, hours.
    pub fn period_hours(&self) -> f64 {
        self.period_hours
    }

    /// Duration of one full pass, hours.
    pub fn pass_hours(&self) -> f64 {
        self.pass_hours
    }

    fn lo(&self) -> f64 {
        self.pass_hours
    }

    fn hi(&self) -> f64 {
        self.pass_hours + self.period_hours
    }
}

impl LifeDistribution for PeriodicScrub {
    fn cdf(&self, t: f64) -> f64 {
        if t <= self.lo() {
            0.0
        } else if t >= self.hi() {
            1.0
        } else {
            (t - self.lo()) / self.period_hours
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.lo() || t > self.hi() {
            0.0
        } else {
            1.0 / self.period_hours
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.lo();
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        self.lo() + p * self.period_hours
    }

    fn mean(&self) -> f64 {
        self.pass_hours + self.period_hours / 2.0
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Uniform phase within the cycle.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.lo() + u * self.period_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(PeriodicScrub::new(0.0, 1.0).is_err());
        assert!(PeriodicScrub::new(168.0, -1.0).is_err());
        assert!(PeriodicScrub::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cdf_is_uniform_on_support() {
        let s = PeriodicScrub::new(100.0, 10.0).unwrap();
        assert_eq!(s.cdf(10.0), 0.0);
        assert!((s.cdf(60.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.cdf(110.0), 1.0);
        assert!((s.quantile(0.5) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn samples_lie_in_support_and_average_correctly() {
        let s = PeriodicScrub::new(168.0, 6.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            assert!((6.0..=174.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - s.mean()).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn comparable_to_paper_weibull_scrub() {
        use raidsim_dists::Weibull3;
        // The paper's Weibull(6, 168, 3) has mean ≈ 156 h; a weekly
        // periodic pass has mean 90 h. Same order, different shape —
        // exactly what the ablation quantifies.
        let paper = Weibull3::new(6.0, 168.0, 3.0).unwrap();
        let periodic = PeriodicScrub::new(168.0, 6.0).unwrap();
        let ratio = paper.mean() / periodic.mean();
        assert!(ratio > 1.0 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn zero_pass_time_is_allowed() {
        let s = PeriodicScrub::new(24.0, 0.0).unwrap();
        assert_eq!(s.cdf(0.0), 0.0);
        assert!((s.mean() - 12.0).abs() < 1e-12);
    }
}
