//! Synthetic populations for the Figure 2 vintages.
//!
//! Draws a field study from each published vintage's fitted
//! distribution, sized and censored like the original study, so that
//! re-fitting recovers the published parameters — the closed loop that
//! validates the whole Figure 2 reproduction.

use crate::fieldgen::{generate, StudyDesign};
use raidsim_dists::empirical::Observation;
use raidsim_dists::rng::SimRng;
use raidsim_hdd::vintage::Vintage;

/// Draws a synthetic field study matching a vintage's published
/// population size and observation window.
///
/// # Panics
///
/// Panics if the vintage's parameters are degenerate (the published
/// constants are not).
pub fn synthesize(vintage: &Vintage, rng: &mut SimRng) -> Vec<Observation> {
    let truth = vintage
        .distribution()
        .expect("published vintage parameters are valid");
    let design = StudyDesign {
        population: vintage.population() as usize,
        window_hours: vintage.window_hours,
        // The published F/S ratios are consistent with entry spread
        // over roughly half the window (see raidsim-hdd vintage tests).
        staggered_entry: 0.5,
    };
    generate(&truth, design, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::fit::mle;
    use raidsim_dists::rng::stream;
    use raidsim_hdd::vintage::fig2_vintages;

    #[test]
    fn synthetic_studies_recover_published_shapes() {
        // The core Figure 2 claim: the three vintages have clearly
        // different, correctly ordered shape parameters.
        let mut rng = stream(17, 0);
        let mut fitted = Vec::new();
        for v in fig2_vintages() {
            let data = synthesize(&v, &mut rng);
            assert_eq!(data.len(), v.population() as usize);
            let fit = mle(&data).unwrap();
            fitted.push((v, fit));
        }
        for (v, fit) in &fitted {
            assert!(
                (fit.beta - v.beta).abs() < 0.25,
                "{}: fitted beta {} vs published {}",
                v.name,
                fit.beta,
                v.beta
            );
        }
        // Ordering of shapes is preserved: 1 < 2 < 3.
        assert!(fitted[0].1.beta < fitted[1].1.beta);
        assert!(fitted[1].1.beta < fitted[2].1.beta);
    }

    #[test]
    fn failure_counts_match_published_scale() {
        let mut rng = stream(42, 0);
        for v in fig2_vintages() {
            let data = synthesize(&v, &mut rng);
            let failures = data.iter().filter(|o| o.failed).count() as f64;
            let published = v.failures as f64;
            // Same order of magnitude (within 4x). The published
            // counts run above the fitted CDF by ~2x (the real study's
            // drives had longer exposure than a single 6,000 h window),
            // so a wider band than for the shape parameters is correct.
            assert!(
                failures > published / 4.0 && failures < published * 4.0,
                "{}: {failures} vs published {published}",
                v.name
            );
        }
    }

    #[test]
    fn deterministic_given_stream() {
        let v = &fig2_vintages()[0];
        let a = synthesize(v, &mut stream(9, 3));
        let b = synthesize(v, &mut stream(9, 3));
        assert_eq!(a, b);
    }
}
