//! Byte-read usage profiles.
//!
//! The latent-defect rate is usage-dependent (paper Section 6.3):
//! errors per byte read × bytes read per hour. Real arrays do not read
//! at a constant rate, so this module provides time-varying profiles
//! whose *mission-average* read intensity feeds the Table 1
//! arithmetic, plus a profile-aware TTLd distribution for the ablation
//! that asks whether the diurnal structure matters (it does not, at
//! these rates — averaging is accurate — which justifies the paper's
//! constant-rate treatment).

use raidsim_dists::{DistError, Weibull3};
use raidsim_hdd::rer::{latent_defect_rate, ReadErrorRate, ReadIntensity};
use serde::{Deserialize, Serialize};

/// A deterministic bytes-read-per-hour profile over the mission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UsageProfile {
    /// Constant read rate (the paper's assumption).
    Constant {
        /// Bytes read per hour.
        bytes_per_hour: f64,
    },
    /// Day/night cycle: `base` at night, `base × peak_ratio` for the
    /// busy 12 hours of each day.
    Diurnal {
        /// Night-time bytes per hour.
        base: f64,
        /// Daytime multiplier (≥ 1).
        peak_ratio: f64,
    },
    /// Linear growth from `start` to `end` bytes/hour across the
    /// mission — datasets grow.
    Growth {
        /// Bytes per hour at mission start.
        start: f64,
        /// Bytes per hour at mission end.
        end: f64,
        /// Mission length, hours.
        mission_hours: f64,
    },
}

impl UsageProfile {
    /// The paper's low usage level (1.35×10⁹ B/h).
    pub fn paper_low() -> Self {
        UsageProfile::Constant {
            bytes_per_hour: ReadIntensity::LOW.bytes_per_hour(),
        }
    }

    /// The paper's high usage level (1.35×10¹⁰ B/h).
    pub fn paper_high() -> Self {
        UsageProfile::Constant {
            bytes_per_hour: ReadIntensity::HIGH.bytes_per_hour(),
        }
    }

    /// Instantaneous read rate at time `t` hours.
    pub fn bytes_per_hour_at(&self, t: f64) -> f64 {
        match *self {
            UsageProfile::Constant { bytes_per_hour } => bytes_per_hour,
            UsageProfile::Diurnal { base, peak_ratio } => {
                let hour_of_day = t.rem_euclid(24.0);
                if hour_of_day < 12.0 {
                    base * peak_ratio
                } else {
                    base
                }
            }
            UsageProfile::Growth {
                start,
                end,
                mission_hours,
            } => {
                let frac = (t / mission_hours).clamp(0.0, 1.0);
                start + (end - start) * frac
            }
        }
    }

    /// Mission-average read intensity.
    ///
    /// # Panics
    ///
    /// Panics if `mission_hours` is not positive.
    pub fn average_intensity(&self, mission_hours: f64) -> ReadIntensity {
        assert!(
            mission_hours.is_finite() && mission_hours > 0.0,
            "mission must be positive"
        );
        let avg = match *self {
            UsageProfile::Constant { bytes_per_hour } => bytes_per_hour,
            UsageProfile::Diurnal { base, peak_ratio } => base * (peak_ratio + 1.0) / 2.0,
            UsageProfile::Growth { start, end, .. } => (start + end) / 2.0,
        };
        ReadIntensity::new(avg)
    }

    /// The time-to-latent-defect distribution implied by this profile's
    /// mission-average rate and the given read-error rate: exponential
    /// (β = 1) as in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for degenerate rates.
    pub fn ttld(&self, rer: ReadErrorRate, mission_hours: f64) -> Result<Weibull3, DistError> {
        let rate = latent_defect_rate(rer, self.average_intensity(mission_hours));
        Weibull3::two_param(1.0 / rate, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile_is_flat() {
        let p = UsageProfile::paper_low();
        assert_eq!(p.bytes_per_hour_at(0.0), p.bytes_per_hour_at(50_000.0));
        assert!((p.average_intensity(87_600.0).bytes_per_hour() - 1.35e9).abs() < 1.0);
    }

    #[test]
    fn diurnal_profile_alternates() {
        let p = UsageProfile::Diurnal {
            base: 1.0e9,
            peak_ratio: 10.0,
        };
        assert_eq!(p.bytes_per_hour_at(6.0), 1.0e10); // daytime
        assert_eq!(p.bytes_per_hour_at(18.0), 1.0e9); // night
        assert_eq!(p.bytes_per_hour_at(30.0), 1.0e10); // next day
                                                       // Average = base * (ratio + 1) / 2 = 5.5e9.
        assert!((p.average_intensity(87_600.0).bytes_per_hour() - 5.5e9).abs() < 1.0);
    }

    #[test]
    fn growth_profile_interpolates() {
        let p = UsageProfile::Growth {
            start: 1.0e9,
            end: 3.0e9,
            mission_hours: 1_000.0,
        };
        assert_eq!(p.bytes_per_hour_at(0.0), 1.0e9);
        assert_eq!(p.bytes_per_hour_at(500.0), 2.0e9);
        assert_eq!(p.bytes_per_hour_at(1_000.0), 3.0e9);
        assert_eq!(p.bytes_per_hour_at(5_000.0), 3.0e9); // clamped
        assert!((p.average_intensity(1_000.0).bytes_per_hour() - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn ttld_matches_table1_base_case() {
        use raidsim_dists::LifeDistribution;
        let d = UsageProfile::paper_low()
            .ttld(ReadErrorRate::MEDIUM, 87_600.0)
            .unwrap();
        assert!((d.mean() - 9_259.26).abs() < 0.1);
    }

    #[test]
    fn heavier_usage_means_faster_defects() {
        use raidsim_dists::LifeDistribution;
        let low = UsageProfile::paper_low()
            .ttld(ReadErrorRate::MEDIUM, 87_600.0)
            .unwrap();
        let high = UsageProfile::paper_high()
            .ttld(ReadErrorRate::MEDIUM, 87_600.0)
            .unwrap();
        assert!((low.mean() / high.mean() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mission must be positive")]
    fn bad_mission_panics() {
        UsageProfile::paper_low().average_intensity(0.0);
    }
}
