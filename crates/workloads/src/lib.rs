//! Workload and field-data synthesis for `raidsim`.
//!
//! The paper's evidence base is proprietary NetApp field data
//! (>120,000 drives). This crate builds the *statistically equivalent*
//! synthetic substitute: populations drawn from the published
//! distributions, observed through the same censoring windows, ready to
//! be re-fitted by `raidsim_dists::fit` — which is exactly what the
//! Figure 1 / Figure 2 reproductions do (see DESIGN.md §5 for the
//! substitution argument).
//!
//! * [`fieldgen`] — population generators with observation-window
//!   censoring and staggered service entry, plus the three Figure 1
//!   population shapes (pure Weibull, competing-risk upturn,
//!   mixture + competing risks).
//! * [`vintage_gen`] — populations matching the Figure 2 vintages.
//! * [`usage`] — byte-read usage profiles that drive the latent-defect
//!   rate (Table 1), including diurnal and growth patterns.
//! * [`scrub_schedule`] — the periodic fleet-scrub alternative to the
//!   paper's per-defect exposure clock (the scrub-semantics ablation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fieldgen;
pub mod scrub_schedule;
pub mod study_power;
pub mod usage;
pub mod vintage_gen;
