//! Synthetic field-population generators.
//!
//! A field study observes a population of drives for a finite window;
//! drives that fail inside the window become exact failure observations
//! and the rest are right-censored suspensions. Real studies also have
//! *staggered entry* — drives enter service over months — which
//! shortens individual observation windows.

use raidsim_dists::empirical::Observation;
use raidsim_dists::rng::SimRng;
use raidsim_dists::{CompetingRisks, LifeDistribution, Mixture, Weibull3};
use rand::RngExt as _;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Study design for a synthetic field population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyDesign {
    /// Number of drives in the study.
    pub population: usize,
    /// Maximum observation window, hours (the paper's studies ran "up
    /// to 6,000 hours").
    pub window_hours: f64,
    /// Fraction of the window over which drives enter service uniformly
    /// (0 = everyone starts together; 0.5 = entries spread over the
    /// first half).
    pub staggered_entry: f64,
}

impl StudyDesign {
    /// The paper's vintage-study design: ~24k drives, 6,000 h window,
    /// moderate staggering.
    pub fn paper_vintage_study(population: usize) -> Self {
        Self {
            population,
            window_hours: 6_000.0,
            staggered_entry: 0.5,
        }
    }

    /// Validates the design.
    ///
    /// # Panics
    ///
    /// Panics on a zero population, non-positive window, or staggering
    /// outside `[0, 1)`.
    fn check(&self) {
        assert!(self.population > 0, "population must be positive");
        assert!(
            self.window_hours.is_finite() && self.window_hours > 0.0,
            "window must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.staggered_entry),
            "staggered_entry must be in [0, 1)"
        );
    }
}

/// Draws a synthetic field data set: each drive's lifetime is sampled
/// from `truth`; drives failing within their (possibly staggered)
/// observation window become failures, the rest suspensions.
///
/// # Panics
///
/// Panics if the design is invalid (see [`StudyDesign`]).
pub fn generate(
    truth: &dyn LifeDistribution,
    design: StudyDesign,
    rng: &mut SimRng,
) -> Vec<Observation> {
    design.check();
    let mut out = Vec::with_capacity(design.population);
    for _ in 0..design.population {
        // A drive entering later is observed for a shorter window.
        let entry_frac = if design.staggered_entry > 0.0 {
            rng.random_range(0.0..design.staggered_entry)
        } else {
            0.0
        };
        let window = design.window_hours * (1.0 - entry_frac);
        let life = truth.sample(rng);
        if life <= window {
            out.push(Observation::failure(life));
        } else {
            out.push(Observation::censored(window));
        }
    }
    out
}

/// The three population shapes of paper Figure 1, as named constructors.
///
/// * HDD #1 — a pure two-parameter Weibull with `β ≈ 0.9` ("Only HDD #1
///   appears to follow a Weibull distribution").
/// * HDD #2 — two competing mechanisms whose dominance changes around
///   10,000 h, bending the probability plot upward ("a marked increase
///   in failure rate… due to a change in failure mechanisms").
/// * HDD #3 — a weak sub-population mixture *and* a wear-out competing
///   risk, giving both inflections ("the characteristics of both
///   competing risks and population mixtures").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig1Population {
    /// Pure Weibull, decreasing hazard.
    Hdd1,
    /// Competing risks with a late-life mechanism change.
    Hdd2,
    /// Mixture plus competing risks (two inflections).
    Hdd3,
}

impl Fig1Population {
    /// Builds the population's true lifetime distribution.
    ///
    /// # Panics
    ///
    /// Never panics for the checked-in parameters.
    pub fn distribution(&self) -> Arc<dyn LifeDistribution> {
        match self {
            Fig1Population::Hdd1 => Arc::new(Weibull3::two_param(900_000.0, 0.9).expect("valid")),
            Fig1Population::Hdd2 => {
                // Early shallow mechanism + wear-out taking over near
                // 10,000 h.
                let early: Arc<dyn LifeDistribution> =
                    Arc::new(Weibull3::two_param(1.5e6, 0.95).expect("valid"));
                let wearout: Arc<dyn LifeDistribution> =
                    Arc::new(Weibull3::two_param(60_000.0, 3.2).expect("valid"));
                Arc::new(CompetingRisks::new(vec![early, wearout]).expect("non-empty"))
            }
            Fig1Population::Hdd3 => {
                // 6% contaminated sub-population with infant mortality;
                // the rest healthy. Everyone shares a wear-out risk.
                let weak: Arc<dyn LifeDistribution> =
                    Arc::new(Weibull3::two_param(30_000.0, 0.6).expect("valid"));
                let healthy: Arc<dyn LifeDistribution> =
                    Arc::new(Weibull3::two_param(2.0e6, 1.0).expect("valid"));
                let mix: Arc<dyn LifeDistribution> =
                    Arc::new(Mixture::new(vec![(0.06, weak), (0.94, healthy)]).expect("weights"));
                let wearout: Arc<dyn LifeDistribution> =
                    Arc::new(Weibull3::two_param(70_000.0, 3.5).expect("valid"));
                Arc::new(CompetingRisks::new(vec![mix, wearout]).expect("non-empty"))
            }
        }
    }

    /// Display label matching the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            Fig1Population::Hdd1 => "HDD #1",
            Fig1Population::Hdd2 => "HDD #2",
            Fig1Population::Hdd3 => "HDD #3",
        }
    }

    /// All three populations in figure order.
    pub fn all() -> [Fig1Population; 3] {
        [
            Fig1Population::Hdd1,
            Fig1Population::Hdd2,
            Fig1Population::Hdd3,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidsim_dists::fit::rank_regression;
    use raidsim_dists::rng::stream;

    #[test]
    fn generate_produces_failures_and_suspensions() {
        let truth = Weibull3::two_param(10_000.0, 1.2).unwrap();
        let mut rng = stream(1, 0);
        let design = StudyDesign {
            population: 5_000,
            window_hours: 6_000.0,
            staggered_entry: 0.0,
        };
        let data = generate(&truth, design, &mut rng);
        assert_eq!(data.len(), 5_000);
        let failures = data.iter().filter(|o| o.failed).count();
        // F(6000) ≈ 0.43 for these parameters.
        let frac = failures as f64 / 5_000.0;
        assert!((frac - truth.cdf(6_000.0)).abs() < 0.03, "frac = {frac}");
        // All suspensions sit exactly at the window.
        assert!(data.iter().filter(|o| !o.failed).all(|o| o.time == 6_000.0));
    }

    #[test]
    fn staggered_entry_reduces_failure_count() {
        let truth = Weibull3::two_param(10_000.0, 1.2).unwrap();
        let design_flat = StudyDesign {
            population: 8_000,
            window_hours: 6_000.0,
            staggered_entry: 0.0,
        };
        let design_staggered = StudyDesign {
            staggered_entry: 0.8,
            ..design_flat
        };
        let mut rng = stream(2, 0);
        let flat = generate(&truth, design_flat, &mut rng)
            .iter()
            .filter(|o| o.failed)
            .count();
        let staggered = generate(&truth, design_staggered, &mut rng)
            .iter()
            .filter(|o| o.failed)
            .count();
        assert!(staggered < flat, "staggered = {staggered}, flat = {flat}");
    }

    #[test]
    fn hdd1_fits_a_straight_weibull_line() {
        let pop = Fig1Population::Hdd1.distribution();
        let mut rng = stream(3, 0);
        // Wide window so the shape is visible.
        let design = StudyDesign {
            population: 20_000,
            window_hours: 30_000.0,
            staggered_entry: 0.0,
        };
        let data = generate(pop.as_ref(), design, &mut rng);
        let fit = rank_regression(&data).unwrap();
        assert!(fit.r_squared.unwrap() > 0.99, "r2 = {:?}", fit.r_squared);
        assert!((fit.beta - 0.9).abs() < 0.1, "beta = {}", fit.beta);
    }

    #[test]
    fn hdd2_bends_upward() {
        // The fitted "global" line must under-represent the late-life
        // steepening: late-decade slope > early-decade slope.
        use raidsim_dists::empirical::johnson_ranks;
        let pop = Fig1Population::Hdd2.distribution();
        let mut rng = stream(4, 0);
        let design = StudyDesign {
            population: 20_000,
            window_hours: 40_000.0,
            staggered_entry: 0.0,
        };
        let data = generate(pop.as_ref(), design, &mut rng);
        let pts = johnson_ranks(&data);
        assert!(pts.len() > 500);
        let k = pts.len() / 4;
        let slope = |pts: &[raidsim_dists::empirical::PlotPoint]| {
            let n = pts.len() as f64;
            let xm = pts.iter().map(|p| p.x()).sum::<f64>() / n;
            let ym = pts.iter().map(|p| p.y()).sum::<f64>() / n;
            let sxy: f64 = pts.iter().map(|p| (p.x() - xm) * (p.y() - ym)).sum();
            let sxx: f64 = pts.iter().map(|p| (p.x() - xm).powi(2)).sum();
            sxy / sxx
        };
        assert!(slope(&pts[pts.len() - k..]) > 1.5 * slope(&pts[..k]));
    }

    #[test]
    fn hdd3_has_bathtub_hazard() {
        let pop = Fig1Population::Hdd3.distribution();
        let early = pop.hazard(200.0);
        let middle = pop.hazard(20_000.0);
        let late = pop.hazard(60_000.0);
        assert!(early > middle, "early = {early}, middle = {middle}");
        assert!(late > middle, "late = {late}, middle = {middle}");
    }

    #[test]
    fn labels_and_enumeration() {
        assert_eq!(Fig1Population::all().len(), 3);
        assert_eq!(Fig1Population::Hdd1.label(), "HDD #1");
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_panics() {
        let truth = Weibull3::two_param(1_000.0, 1.0).unwrap();
        let mut rng = stream(5, 0);
        generate(
            &truth,
            StudyDesign {
                population: 0,
                window_hours: 100.0,
                staggered_entry: 0.0,
            },
            &mut rng,
        );
    }
}
