use crate::mixture::invert_cdf;
use crate::{DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use std::sync::Arc;

/// Competing risks: the lifetime is the **minimum** of several independent
/// failure mechanisms.
///
/// Every drive is exposed to every mechanism and fails from whichever
/// strikes first. The survival function is the product of the component
/// survival functions and the hazard is the *sum* of the component
/// hazards. Competing risks produce the late-life upturn the paper sees in
/// HDD #2 and HDD #3 of Figure 1 ("competing risks for the second
/// \[inflection\] (upturn in failure rate)"): an early-life mechanism with
/// `β < 1` combined with a wear-out mechanism with `β > 1` gives the
/// classic bathtub shape.
///
/// # Example
///
/// ```
/// use raidsim_dists::{CompetingRisks, LifeDistribution, Weibull3};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // Infant mortality + wear-out = bathtub hazard.
/// let infant = Arc::new(Weibull3::new(0.0, 2.0e6, 0.6)?);
/// let wearout = Arc::new(Weibull3::new(0.0, 90_000.0, 3.0)?);
/// let drive = CompetingRisks::new(vec![infant as _, wearout as _])?;
/// let early = drive.hazard(100.0);
/// let middle = drive.hazard(20_000.0);
/// let late = drive.hazard(80_000.0);
/// assert!(early > middle && middle < late);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompetingRisks {
    risks: Vec<Arc<dyn LifeDistribution>>,
}

impl CompetingRisks {
    /// Creates a competing-risks lifetime from independent mechanisms.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Empty`] if no mechanisms are given.
    pub fn new(risks: Vec<Arc<dyn LifeDistribution>>) -> Result<Self, DistError> {
        if risks.is_empty() {
            return Err(DistError::Empty);
        }
        Ok(Self { risks })
    }

    /// The component failure mechanisms, in construction order.
    pub fn risks(&self) -> &[Arc<dyn LifeDistribution>] {
        &self.risks
    }
}

impl LifeDistribution for CompetingRisks {
    fn cdf(&self, t: f64) -> f64 {
        1.0 - self.sf(t)
    }

    fn pdf(&self, t: f64) -> f64 {
        // f(t) = S(t) * h(t) with h = sum of component hazards.
        let s = self.sf(t);
        if s == 0.0 {
            return 0.0;
        }
        s * self.hazard(t)
    }

    fn quantile(&self, p: f64) -> f64 {
        invert_cdf(self, p)
    }

    fn mean(&self) -> f64 {
        // E[T] = integral of S(t) dt; adaptive trapezoid on an expanding
        // grid. The integrand is smooth and monotone decreasing.
        let mut total = 0.0;
        let mut t = 0.0;
        let mut step = self
            .risks
            .iter()
            .map(|d| d.mean())
            .fold(f64::INFINITY, f64::min)
            / 2_000.0;
        let mut s_prev = 1.0;
        for _ in 0..2_000_000 {
            let t_next = t + step;
            let s_next = self.sf(t_next);
            total += 0.5 * (s_prev + s_next) * step;
            t = t_next;
            s_prev = s_next;
            if s_next < 1e-12 {
                break;
            }
            // Expand the step as the tail flattens.
            step *= 1.005;
        }
        total
    }

    fn sf(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.sf(t)).product()
    }

    fn hazard(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.hazard(t)).sum()
    }

    fn cum_hazard(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.cum_hazard(t)).sum()
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Minimum of independent samples: exact by definition.
        self.risks
            .iter()
            .map(|d| d.sample(rng))
            .fold(f64::INFINITY, f64::min)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Competing {
            risks: self.risks.iter().map(SampleKernel::lower).collect(),
            source: Arc::new(self.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weibull3;
    use rand::SeedableRng;

    fn bathtub() -> CompetingRisks {
        let infant = Arc::new(Weibull3::new(0.0, 2.0e6, 0.6).unwrap());
        let wearout = Arc::new(Weibull3::new(0.0, 90_000.0, 3.0).unwrap());
        CompetingRisks::new(vec![infant as _, wearout as _]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CompetingRisks::new(vec![]).unwrap_err(), DistError::Empty);
    }

    #[test]
    fn sf_is_product_of_components() {
        let c = bathtub();
        for &t in &[100.0, 10_000.0, 90_000.0] {
            let expect: f64 = c.risks().iter().map(|d| d.sf(t)).product();
            assert!((c.sf(t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_is_sum_of_components() {
        let c = bathtub();
        let t = 30_000.0;
        let expect: f64 = c.risks().iter().map(|d| d.hazard(t)).sum();
        assert!((c.hazard(t) - expect).abs() < 1e-15);
    }

    #[test]
    fn two_weibulls_same_shape_compose_in_closed_form() {
        // min of Weibull(eta1, b) and Weibull(eta2, b) is Weibull with
        // eta = (eta1^-b + eta2^-b)^(-1/b), same shape.
        let b = 1.5;
        let (e1, e2) = (100.0_f64, 300.0_f64);
        let c = CompetingRisks::new(vec![
            Arc::new(Weibull3::new(0.0, e1, b).unwrap()) as _,
            Arc::new(Weibull3::new(0.0, e2, b).unwrap()) as _,
        ])
        .unwrap();
        let eta = (e1.powf(-b) + e2.powf(-b)).powf(-1.0 / b);
        let w = Weibull3::new(0.0, eta, b).unwrap();
        for &t in &[10.0, 80.0, 200.0] {
            assert!((c.cdf(t) - w.cdf(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let c = bathtub();
        for &p in &[0.05, 0.5, 0.95] {
            let t = c.quantile(p);
            assert!((c.cdf(t) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_min_matches_cdf() {
        let c = bathtub();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 40_000;
        let below = (0..n).filter(|_| c.sample(&mut rng) <= 60_000.0).count() as f64 / n as f64;
        assert!(
            (below - c.cdf(60_000.0)).abs() < 0.01,
            "empirical = {below}, analytic = {}",
            c.cdf(60_000.0)
        );
    }

    #[test]
    fn mean_numerical_integration_is_close_to_monte_carlo() {
        let c = bathtub();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 60_000;
        let mc: f64 = (0..n).map(|_| c.sample(&mut rng)).sum::<f64>() / n as f64;
        let analytic = c.mean();
        assert!(
            (mc - analytic).abs() / analytic < 0.02,
            "mc = {mc}, quad = {analytic}"
        );
    }

    #[test]
    fn bathtub_shape() {
        let c = bathtub();
        assert!(c.hazard(50.0) > c.hazard(20_000.0));
        assert!(c.hazard(20_000.0) < c.hazard(85_000.0));
    }
}
