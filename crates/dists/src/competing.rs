use crate::mixture::invert_cdf;
use crate::{DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use std::sync::Arc;

/// Competing risks: the lifetime is the **minimum** of several independent
/// failure mechanisms.
///
/// Every drive is exposed to every mechanism and fails from whichever
/// strikes first. The survival function is the product of the component
/// survival functions and the hazard is the *sum* of the component
/// hazards. Competing risks produce the late-life upturn the paper sees in
/// HDD #2 and HDD #3 of Figure 1 ("competing risks for the second
/// \[inflection\] (upturn in failure rate)"): an early-life mechanism with
/// `β < 1` combined with a wear-out mechanism with `β > 1` gives the
/// classic bathtub shape.
///
/// # Example
///
/// ```
/// use raidsim_dists::{CompetingRisks, LifeDistribution, Weibull3};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // Infant mortality + wear-out = bathtub hazard.
/// let infant = Arc::new(Weibull3::new(0.0, 2.0e6, 0.6)?);
/// let wearout = Arc::new(Weibull3::new(0.0, 90_000.0, 3.0)?);
/// let drive = CompetingRisks::new(vec![infant as _, wearout as _])?;
/// let early = drive.hazard(100.0);
/// let middle = drive.hazard(20_000.0);
/// let late = drive.hazard(80_000.0);
/// assert!(early > middle && middle < late);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompetingRisks {
    risks: Vec<Arc<dyn LifeDistribution>>,
}

impl CompetingRisks {
    /// Creates a competing-risks lifetime from independent mechanisms.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Empty`] if no mechanisms are given.
    pub fn new(risks: Vec<Arc<dyn LifeDistribution>>) -> Result<Self, DistError> {
        if risks.is_empty() {
            return Err(DistError::Empty);
        }
        Ok(Self { risks })
    }

    /// The component failure mechanisms, in construction order.
    pub fn risks(&self) -> &[Arc<dyn LifeDistribution>] {
        &self.risks
    }

    /// Effective characteristic life of the minimum of same-shape
    /// Weibulls: `η_eff = (Σ η_i^{−β})^{−1/β}`.
    ///
    /// Evaluated in the log domain via log-sum-exp: with
    /// `x_i = −β·ln η_i` and `m = max x_i`,
    /// `η_eff = exp(−(m + ln Σ e^{x_i − m}) / β)`. The naive power form
    /// underflows `η^{−β}` to `0` once `β·ln η` exceeds ~709 (e.g.
    /// `η = 100`, `β = 200`), returning `inf`; the log-domain form is
    /// exact-in-exponent for any representable `β` and `η`.
    ///
    /// # Errors
    ///
    /// [`DistError::Empty`] when `etas` is empty;
    /// [`DistError::InvalidParameter`] when `beta` or any `η` is not
    /// finite and positive.
    pub fn effective_eta(etas: &[f64], beta: f64) -> Result<f64, DistError> {
        if etas.is_empty() {
            return Err(DistError::Empty);
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and positive",
            });
        }
        let mut max_x = f64::NEG_INFINITY;
        for &eta in etas {
            if !(eta.is_finite() && eta > 0.0) {
                return Err(DistError::InvalidParameter {
                    name: "eta",
                    value: eta,
                    constraint: "must be finite and positive",
                });
            }
            max_x = max_x.max(-beta * eta.ln());
        }
        let sum: f64 = etas
            .iter()
            .map(|&eta| (-beta * eta.ln() - max_x).exp())
            .sum();
        Ok((-(max_x + sum.ln()) / beta).exp())
    }
}

impl LifeDistribution for CompetingRisks {
    fn cdf(&self, t: f64) -> f64 {
        1.0 - self.sf(t)
    }

    fn pdf(&self, t: f64) -> f64 {
        // f(t) = S(t) * h(t) with h = sum of component hazards.
        let s = self.sf(t);
        if s == 0.0 {
            return 0.0;
        }
        s * self.hazard(t)
    }

    fn quantile(&self, p: f64) -> f64 {
        invert_cdf(self, p)
    }

    fn mean(&self) -> f64 {
        // E[T] = integral of S(t) dt; adaptive trapezoid on an expanding
        // grid. The integrand is smooth and monotone decreasing.
        let mut total = 0.0;
        let mut t = 0.0;
        let mut step = self
            .risks
            .iter()
            .map(|d| d.mean())
            .fold(f64::INFINITY, f64::min)
            / 2_000.0;
        let mut s_prev = 1.0;
        for _ in 0..2_000_000 {
            let t_next = t + step;
            let s_next = self.sf(t_next);
            total += 0.5 * (s_prev + s_next) * step;
            t = t_next;
            s_prev = s_next;
            if s_next < 1e-12 {
                break;
            }
            // Expand the step as the tail flattens.
            step *= 1.005;
        }
        total
    }

    fn sf(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.sf(t)).product()
    }

    fn hazard(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.hazard(t)).sum()
    }

    fn cum_hazard(&self, t: f64) -> f64 {
        self.risks.iter().map(|d| d.cum_hazard(t)).sum()
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Minimum of independent samples: exact by definition.
        self.risks
            .iter()
            .map(|d| d.sample(rng))
            .fold(f64::INFINITY, f64::min)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Competing {
            risks: self.risks.iter().map(SampleKernel::lower).collect(),
            source: Arc::new(self.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weibull3;
    use rand::SeedableRng;

    fn bathtub() -> CompetingRisks {
        let infant = Arc::new(Weibull3::new(0.0, 2.0e6, 0.6).unwrap());
        let wearout = Arc::new(Weibull3::new(0.0, 90_000.0, 3.0).unwrap());
        CompetingRisks::new(vec![infant as _, wearout as _]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(CompetingRisks::new(vec![]).unwrap_err(), DistError::Empty);
    }

    #[test]
    fn sf_is_product_of_components() {
        let c = bathtub();
        for &t in &[100.0, 10_000.0, 90_000.0] {
            let expect: f64 = c.risks().iter().map(|d| d.sf(t)).product();
            assert!((c.sf(t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_is_sum_of_components() {
        let c = bathtub();
        let t = 30_000.0;
        let expect: f64 = c.risks().iter().map(|d| d.hazard(t)).sum();
        assert!((c.hazard(t) - expect).abs() < 1e-15);
    }

    #[test]
    fn two_weibulls_same_shape_compose_in_closed_form() {
        // min of Weibull(eta1, b) and Weibull(eta2, b) is Weibull with
        // eta = (eta1^-b + eta2^-b)^(-1/b), same shape.
        let b = 1.5;
        let (e1, e2) = (100.0_f64, 300.0_f64);
        let c = CompetingRisks::new(vec![
            Arc::new(Weibull3::new(0.0, e1, b).unwrap()) as _,
            Arc::new(Weibull3::new(0.0, e2, b).unwrap()) as _,
        ])
        .unwrap();
        let eta = CompetingRisks::effective_eta(&[e1, e2], b).unwrap();
        let w = Weibull3::new(0.0, eta, b).unwrap();
        for &t in &[10.0, 80.0, 200.0] {
            assert!((c.cdf(t) - w.cdf(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn effective_eta_matches_naive_power_form_where_it_does_not_underflow() {
        let naive = |etas: &[f64], b: f64| -> f64 {
            etas.iter().map(|e| e.powf(-b)).sum::<f64>().powf(-1.0 / b)
        };
        for (etas, b) in [
            (vec![100.0, 300.0], 1.5),
            (vec![461_386.0, 90_000.0], 1.12),
            (vec![50.0, 50.0, 50.0], 3.0),
        ] {
            let exact = CompetingRisks::effective_eta(&etas, b).unwrap();
            let reference = naive(&etas, b);
            assert!(
                (exact - reference).abs() / reference < 1e-12,
                "etas {etas:?} beta {b}: log-domain {exact} vs naive {reference}"
            );
        }
    }

    #[test]
    fn effective_eta_survives_large_shapes_where_powf_underflows() {
        // Regression: eta^{-beta} underflows to 0 at beta = 200,
        // eta = 100 (exponent ~ -400), so the naive form returns
        // 0^(−1/β) = inf. The min of same-shape Weibulls at huge β is
        // dominated by the smallest eta: η_eff → min η from below.
        let b = 200.0;
        let (e1, e2) = (100.0_f64, 300.0_f64);
        let naive = (e1.powf(-b) + e2.powf(-b)).powf(-1.0 / b);
        assert!(naive.is_infinite(), "naive form no longer underflows");
        let eta = CompetingRisks::effective_eta(&[e1, e2], b).unwrap();
        assert!(eta.is_finite());
        // (1 + (1/3)^200)^(-1/200) is indistinguishable from 100 at f64
        // precision (the correction is ~e^{-220}), so the answer is 100
        // up to the ln/exp round trip.
        assert!((eta - 100.0).abs() < 1e-9, "eta = {eta}");
    }

    #[test]
    fn effective_eta_rejects_bad_parameters() {
        assert_eq!(
            CompetingRisks::effective_eta(&[], 1.5).unwrap_err(),
            DistError::Empty
        );
        assert!(CompetingRisks::effective_eta(&[100.0], 0.0).is_err());
        assert!(CompetingRisks::effective_eta(&[100.0], f64::NAN).is_err());
        assert!(CompetingRisks::effective_eta(&[100.0, -3.0], 1.5).is_err());
        assert!(CompetingRisks::effective_eta(&[f64::INFINITY], 1.5).is_err());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let c = bathtub();
        for &p in &[0.05, 0.5, 0.95] {
            let t = c.quantile(p);
            assert!((c.cdf(t) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_min_matches_cdf() {
        let c = bathtub();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 40_000;
        let below = (0..n).filter(|_| c.sample(&mut rng) <= 60_000.0).count() as f64 / n as f64;
        assert!(
            (below - c.cdf(60_000.0)).abs() < 0.01,
            "empirical = {below}, analytic = {}",
            c.cdf(60_000.0)
        );
    }

    #[test]
    fn mean_numerical_integration_is_close_to_monte_carlo() {
        let c = bathtub();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 60_000;
        let mc: f64 = (0..n).map(|_| c.sample(&mut rng)).sum::<f64>() / n as f64;
        let analytic = c.mean();
        assert!(
            (mc - analytic).abs() / analytic < 0.02,
            "mc = {mc}, quad = {analytic}"
        );
    }

    #[test]
    fn bathtub_shape() {
        let c = bathtub();
        assert!(c.hazard(50.0) > c.hazard(20_000.0));
        assert!(c.hazard(20_000.0) < c.hazard(85_000.0));
    }
}
