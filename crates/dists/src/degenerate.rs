use crate::{DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point-mass (degenerate) distribution: every draw equals `value`.
///
/// Not a model of anything physical — it exists so the simulation
/// engines can be driven through *hand-computable schedules* in tests:
/// with every transition time deterministic, the exact DDF rule
/// outcomes (ordering, blocking windows, defect alignment) can be
/// asserted event by event. See `raidsim-core`'s `scripted_scenarios`
/// test suite.
///
/// # Example
///
/// ```
/// use raidsim_dists::{Degenerate, LifeDistribution};
/// use raidsim_dists::rng::stream;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// let d = Degenerate::new(100.0)?;
/// assert_eq!(d.sample(&mut stream(1, 0)), 100.0);
/// assert_eq!(d.cdf(99.9), 0.0);
/// assert_eq!(d.cdf(100.0), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degenerate {
    value: f64,
}

impl Degenerate {
    /// Creates a point mass at `value` hours.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `value` is negative
    /// or non-finite.
    pub fn new(value: f64) -> Result<Self, DistError> {
        if !value.is_finite() || value < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "value",
                value,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self { value })
    }

    /// The point of support.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl LifeDistribution for Degenerate {
    fn cdf(&self, t: f64) -> f64 {
        if t >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        // The density does not exist; report the conventional 0 away
        // from the atom and infinity at it.
        if t == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p < 0.0 {
            return self.value;
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn sample(&self, _rng: &mut dyn Rng) -> f64 {
        self.value
    }

    fn sample_conditional(&self, t0: f64, _rng: &mut dyn Rng) -> f64 {
        (self.value - t0).max(0.0)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Degenerate { value: self.value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;

    #[test]
    fn rejects_bad_values() {
        assert!(Degenerate::new(-1.0).is_err());
        assert!(Degenerate::new(f64::NAN).is_err());
        assert!(Degenerate::new(f64::INFINITY).is_err());
    }

    #[test]
    fn everything_is_the_value() {
        let d = Degenerate::new(42.0).unwrap();
        let mut rng = stream(0, 0);
        assert_eq!(d.sample(&mut rng), 42.0);
        assert_eq!(d.mean(), 42.0);
        assert_eq!(d.quantile(0.0), 42.0);
        assert_eq!(d.quantile(0.999), 42.0);
        assert_eq!(d.value(), 42.0);
    }

    #[test]
    fn cdf_steps_at_the_atom() {
        let d = Degenerate::new(10.0).unwrap();
        assert_eq!(d.cdf(9.999_999), 0.0);
        assert_eq!(d.cdf(10.0), 1.0);
        assert_eq!(d.sf(9.0), 1.0);
        assert_eq!(d.sf(11.0), 0.0);
    }

    #[test]
    fn conditional_sampling_subtracts_elapsed_time() {
        let d = Degenerate::new(100.0).unwrap();
        let mut rng = stream(0, 0);
        assert_eq!(d.sample_conditional(40.0, &mut rng), 60.0);
        assert_eq!(d.sample_conditional(150.0, &mut rng), 0.0);
    }
}
