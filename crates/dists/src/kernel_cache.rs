//! Memoized [`SampleKernel`] lowering for multi-scenario sweeps.
//!
//! Lowering a distribution tree ([`SampleKernel::lower`]) walks the
//! whole `dyn LifeDistribution` structure and allocates for mixtures
//! and competing-risks nodes. A fused sweep opens one engine session
//! per (worker, scenario), and sweep scenarios overwhelmingly share
//! distribution trees — a scrub-interval ladder varies one field of
//! the config while every `Arc<dyn LifeDistribution>` it clones stays
//! the same allocation. [`KernelCache`] memoizes lowering on that
//! allocation identity: each distinct tree lowers once per worker per
//! sweep, and every later session clones the finished kernel.
//!
//! Keys are held as [`Arc`] clones, so a cached tree can never be
//! dropped and its address reused while the cache is alive —
//! [`Arc::ptr_eq`] on an entry is therefore sound, not an ABA hazard.
//! The cache holds no synchronization state (each worker owns one), so
//! it stays outside the model-checked concurrency surface; sharing one
//! across workers would buy nothing but a lock on the session-open
//! path.

use std::sync::Arc;

use crate::kernel::SampleKernel;
use crate::LifeDistribution;

/// A per-worker, per-sweep memo of lowered sampling kernels, keyed by
/// distribution-tree identity (`Arc` pointer equality).
///
/// The entry list is a linear scan: a sweep config references a
/// handful of trees (operational, latent, restore, scrub), so the
/// entry count stays in the single digits and a vector beats any map
/// on both lookup cost and determinism-lint surface.
#[derive(Debug, Default)]
pub struct KernelCache {
    entries: Vec<(Arc<dyn LifeDistribution>, SampleKernel)>,
    hits: u64,
    lowerings: u64,
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> Self {
        KernelCache::default()
    }

    /// Lowers `dist`, reusing the memoized kernel when this exact tree
    /// (same allocation) was lowered before. The returned kernel is a
    /// clone either way, draw-for-draw bit-identical to an uncached
    /// [`SampleKernel::lower`].
    pub fn lower(&mut self, dist: &Arc<dyn LifeDistribution>) -> SampleKernel {
        if let Some((_, kernel)) = self.entries.iter().find(|(d, _)| Arc::ptr_eq(d, dist)) {
            self.hits += 1;
            return kernel.clone();
        }
        let kernel = SampleKernel::lower(dist);
        self.lowerings += 1;
        self.entries.push((Arc::clone(dist), kernel.clone()));
        kernel
    }

    /// Lowerings answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Full lowerings performed (one per distinct tree).
    pub fn lowerings(&self) -> u64 {
        self.lowerings
    }

    /// Distinct trees currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has memoized anything yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, Weibull3};

    #[test]
    fn identical_trees_lower_once() {
        let dist: Arc<dyn LifeDistribution> =
            Arc::new(Weibull3::new(0.0, 461_386.0, 1.12).unwrap());
        let mut cache = KernelCache::new();
        let first = cache.lower(&dist);
        let again = cache.lower(&Arc::clone(&dist));
        assert_eq!(cache.lowerings(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(first.variant_name(), again.variant_name());
    }

    #[test]
    fn distinct_trees_get_distinct_entries() {
        // Equal parameters, different allocations: identity keying
        // must treat them as distinct (correct, merely conservative).
        let a: Arc<dyn LifeDistribution> = Arc::new(Exponential::new(1e-6).unwrap());
        let b: Arc<dyn LifeDistribution> = Arc::new(Exponential::new(1e-6).unwrap());
        let mut cache = KernelCache::new();
        let _ = cache.lower(&a);
        let _ = cache.lower(&b);
        assert_eq!(cache.lowerings(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_kernels_draw_bit_identically() {
        let dist: Arc<dyn LifeDistribution> =
            Arc::new(Weibull3::new(0.0, 461_386.0, 1.12).unwrap());
        let mut cache = KernelCache::new();
        let _ = cache.lower(&dist);
        let cached = cache.lower(&dist);
        let fresh = SampleKernel::lower(&dist);
        let mut a = crate::rng::stream(7, 0);
        let mut b = crate::rng::stream(7, 0);
        for _ in 0..64 {
            let x = cached.sample(&mut a);
            let y = fresh.sample(&mut b);
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
