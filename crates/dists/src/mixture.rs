use crate::{rng_f64, DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use std::sync::Arc;

/// A finite mixture of lifetime distributions.
///
/// Models the *population mixtures* the paper observes in field data
/// (Section 2): "some of the HDDs have a failure mechanism that the
/// others do not have and so do not, in fact, fail from that mechanism",
/// e.g. particle contamination affecting only a sub-population. A mixture
/// with a vulnerable sub-population produces the first inflection (failure
/// rate *decrease*) in the HDD #3 curve of Figure 1.
///
/// Each component has a weight; weights must be positive and sum to 1
/// (within a small tolerance).
///
/// # Example
///
/// ```
/// use raidsim_dists::{LifeDistribution, Mixture, Weibull3};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // 5% of drives carry a contamination defect (weak, infant-mortality
/// // population); 95% are healthy.
/// let weak = Arc::new(Weibull3::new(0.0, 20_000.0, 0.7)?);
/// let healthy = Arc::new(Weibull3::new(0.0, 500_000.0, 1.1)?);
/// let pop = Mixture::new(vec![(0.05, weak as _), (0.95, healthy as _)])?;
/// // Early on, the population hazard is dominated by the weak drives
/// // and decreases as they die off.
/// assert!(pop.hazard(100.0) > pop.hazard(10_000.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<(f64, Arc<dyn LifeDistribution>)>,
}

impl Mixture {
    /// Tolerance allowed on the weight sum.
    const WEIGHT_TOL: f64 = 1e-9;

    /// Creates a mixture from `(weight, component)` pairs.
    ///
    /// # Errors
    ///
    /// * [`DistError::Empty`] if no components are given.
    /// * [`DistError::InvalidWeights`] if any weight is non-positive or
    ///   the weights do not sum to 1.
    pub fn new(components: Vec<(f64, Arc<dyn LifeDistribution>)>) -> Result<Self, DistError> {
        if components.is_empty() {
            return Err(DistError::Empty);
        }
        let sum: f64 = components.iter().map(|(w, _)| *w).sum();
        if components.iter().any(|(w, _)| !w.is_finite() || *w <= 0.0)
            || (sum - 1.0).abs() > Self::WEIGHT_TOL
        {
            return Err(DistError::InvalidWeights { sum });
        }
        Ok(Self { components })
    }

    /// The `(weight, component)` pairs, in construction order.
    pub fn components(&self) -> &[(f64, Arc<dyn LifeDistribution>)] {
        &self.components
    }
}

impl LifeDistribution for Mixture {
    fn cdf(&self, t: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(t)).sum()
    }

    fn pdf(&self, t: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(t)).sum()
    }

    fn quantile(&self, p: f64) -> f64 {
        invert_cdf(self, p)
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Pick a component by weight, then sample it: exact and O(k).
        let mut u = rng_f64(rng);
        for (w, d) in &self.components {
            if u < *w {
                return d.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall through to the last component.
        self.components
            .last()
            .expect("mixture is never empty")
            .1
            .sample(rng)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Mixture {
            components: self
                .components
                .iter()
                .map(|(w, d)| (*w, SampleKernel::lower(d)))
                .collect(),
            source: Arc::new(self.clone()),
        })
    }
}

/// Numerically inverts a CDF by bracketing + bisection.
///
/// Works for any continuous non-decreasing CDF on `[0, ∞)`. Used by the
/// composite distributions whose quantile has no closed form.
pub(crate) fn invert_cdf<D: LifeDistribution + ?Sized>(d: &D, p: f64) -> f64 {
    if p <= 0.0 {
        // Support minimum: walk down from 1.0 until the CDF is zero, or
        // return 0. Cheap approximation is fine: saturate at zero like
        // the concrete distributions do.
        return bisect(d, 0.0);
    }
    assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
    bisect(d, p)
}

fn bisect<D: LifeDistribution + ?Sized>(d: &D, p: f64) -> f64 {
    // Expand the upper bracket geometrically.
    let mut hi = 1.0;
    let mut iter = 0;
    while d.cdf(hi) < p {
        hi *= 4.0;
        iter += 1;
        assert!(iter < 600, "cdf never reaches p = {p}");
    }
    let mut lo = 0.0;
    // 200 bisections: |hi - lo| shrinks below f64 resolution.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if d.cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weibull3;
    use rand::SeedableRng;

    fn two_pop() -> Mixture {
        let weak = Arc::new(Weibull3::new(0.0, 5_000.0, 0.8).unwrap());
        let strong = Arc::new(Weibull3::new(0.0, 400_000.0, 1.2).unwrap());
        Mixture::new(vec![(0.1, weak as _), (0.9, strong as _)]).unwrap()
    }

    #[test]
    fn rejects_empty_and_bad_weights() {
        assert_eq!(Mixture::new(vec![]).unwrap_err(), DistError::Empty);
        let d = Arc::new(Weibull3::new(0.0, 1.0, 1.0).unwrap());
        assert!(matches!(
            Mixture::new(vec![(0.5, d.clone() as _), (0.6, d.clone() as _)]),
            Err(DistError::InvalidWeights { .. })
        ));
        assert!(matches!(
            Mixture::new(vec![(-0.5, d.clone() as _), (1.5, d as _)]),
            Err(DistError::InvalidWeights { .. })
        ));
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let m = two_pop();
        let (w0, d0) = (&m.components()[0].0, &m.components()[0].1);
        let (w1, d1) = (&m.components()[1].0, &m.components()[1].1);
        for &t in &[100.0, 5_000.0, 100_000.0] {
            let expect = w0 * d0.cdf(t) + w1 * d1.cdf(t);
            assert!((m.cdf(t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf_numerically() {
        let m = two_pop();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.999] {
            let t = m.quantile(p);
            assert!((m.cdf(t) - p).abs() < 1e-9, "p = {p}, t = {t}");
        }
    }

    #[test]
    fn mean_is_weighted_mean() {
        let m = two_pop();
        let expect = 0.1 * m.components()[0].1.mean() + 0.9 * m.components()[1].1.mean();
        assert!((m.mean() - expect).abs() < 1e-6);
    }

    #[test]
    fn sampling_matches_cdf() {
        let m = two_pop();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        // One-sample KS test at the 1% level: D_crit ~ 1.63 / sqrt(n).
        let mut d_stat: f64 = 0.0;
        for (i, &x) in samples.iter().enumerate() {
            let emp_hi = (i + 1) as f64 / n as f64;
            let emp_lo = i as f64 / n as f64;
            let f = m.cdf(x);
            d_stat = d_stat.max((emp_hi - f).abs()).max((f - emp_lo).abs());
        }
        assert!(d_stat < 1.63 / (n as f64).sqrt(), "KS D = {d_stat}");
    }

    #[test]
    fn weak_subpopulation_creates_decreasing_then_stable_hazard() {
        // This is the Figure 1 / HDD #3 first-inflection behaviour.
        let m = two_pop();
        assert!(m.hazard(10.0) > m.hazard(20_000.0));
    }
}
