use crate::empirical::Ecdf;
use crate::LifeDistribution;

/// One-sample Kolmogorov–Smirnov statistic between a data sample and a
/// fitted [`LifeDistribution`].
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN (via [`Ecdf::new`]).
pub fn ks_statistic(samples: &[f64], dist: &dyn LifeDistribution) -> f64 {
    Ecdf::new(samples).ks_distance(|t| dist.cdf(t))
}

/// Approximate critical value of the one-sample KS statistic at
/// significance `alpha` for sample size `n` (asymptotic formula
/// `c(α) / √n` with `c(α) = √(−ln(α/2) / 2)`).
///
/// Valid for `n ≳ 35`; conservative below that. Common values:
/// `c(0.05) ≈ 1.358`, `c(0.01) ≈ 1.628`.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1)` or `n == 0`.
pub fn ks_critical_value(alpha: f64, n: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    assert!(n > 0, "n must be positive");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LifeDistribution, Weibull3};
    use rand::SeedableRng;

    #[test]
    fn critical_value_constants() {
        assert!((ks_critical_value(0.05, 1) - 1.3581).abs() < 1e-3);
        assert!((ks_critical_value(0.01, 1) - 1.6276).abs() < 1e-3);
        assert!(ks_critical_value(0.05, 100) < ks_critical_value(0.05, 10));
    }

    #[test]
    fn correct_model_passes_wrong_model_fails() {
        let truth = Weibull3::two_param(100.0, 2.0).unwrap();
        let wrong = Weibull3::two_param(100.0, 0.8).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let samples: Vec<f64> = (0..5_000).map(|_| truth.sample(&mut rng)).collect();
        let crit = ks_critical_value(0.01, samples.len());
        assert!(ks_statistic(&samples, &truth) < crit);
        assert!(ks_statistic(&samples, &wrong) > crit);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        ks_critical_value(0.0, 10);
    }
}
