use super::FittedWeibull;
use crate::empirical::{johnson_ranks, Observation};
use crate::DistError;

/// Median-rank regression (probability-plot fit) of a two-parameter
/// Weibull to right-censored life data.
///
/// Plotting positions come from the Johnson rank-adjustment method
/// ([`crate::empirical::johnson_ranks`]); the regression is least squares
/// of `y = ln(−ln(1 − F̂))` on `x = ln t` ("rank regression on Y"). On
/// these axes the Weibull CDF is the line `y = βx − β ln η`, so the slope
/// estimates `β` and the intercept gives `η`.
///
/// This is exactly the construction of paper Figures 1 and 2: "data for
/// three different products are plotted assuming a two-parameter Weibull
/// distribution (a straight line indicates a good fit)". The returned
/// `r_squared` quantifies straightness; mixtures and competing risks show
/// up as low `R²` / curvature.
///
/// # Errors
///
/// Returns [`DistError::InsufficientData`] when fewer than 2 failures are
/// present (a line needs two points) and
/// [`DistError::InvalidParameter`] if all failures share one time.
///
/// # Example
///
/// ```
/// use raidsim_dists::empirical::Observation;
/// use raidsim_dists::fit::rank_regression;
/// use raidsim_dists::{LifeDistribution, Weibull3};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// let truth = Weibull3::two_param(1000.0, 1.5)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data: Vec<Observation> = (0..500)
///     .map(|_| Observation::failure(truth.sample(&mut rng)))
///     .collect();
/// let fit = rank_regression(&data)?;
/// assert!((fit.beta - 1.5).abs() < 0.15);
/// assert!(fit.r_squared.unwrap() > 0.95);
/// # Ok(())
/// # }
/// ```
pub fn rank_regression(data: &[Observation]) -> Result<FittedWeibull, DistError> {
    let points = johnson_ranks(data);
    let failures = points.len();
    let suspensions = data.len() - failures;
    if failures < 2 {
        return Err(DistError::InsufficientData {
            failures,
            required: 2,
        });
    }
    if points.iter().any(|p| p.time <= 0.0) {
        return Err(DistError::InvalidParameter {
            name: "time",
            value: points.iter().map(|p| p.time).fold(f64::INFINITY, f64::min),
            constraint: "failure times must be > 0 for a log-log fit",
        });
    }

    let n = failures as f64;
    let xs: Vec<f64> = points.iter().map(|p| p.x()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.y()).collect();
    let x_mean = xs.iter().sum::<f64>() / n;
    let y_mean = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - x_mean).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - y_mean).powi(2)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - x_mean) * (y - y_mean))
        .sum();
    if sxx <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "times",
            value: points[0].time,
            constraint: "all failure times identical; slope undefined",
        });
    }

    let beta = sxy / sxx;
    if !(beta.is_finite() && beta > 0.0) {
        return Err(DistError::NoConvergence { iterations: 0 });
    }
    let intercept = y_mean - beta * x_mean;
    let eta = (-intercept / beta).exp();
    let r_squared = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };

    Ok(FittedWeibull {
        eta,
        beta,
        r_squared: Some(r_squared),
        log_likelihood: None,
        failures,
        suspensions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompetingRisks, LifeDistribution, Mixture, Weibull3};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn sample_failures(d: &dyn LifeDistribution, n: usize, seed: u64) -> Vec<Observation> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Observation::failure(d.sample(&mut rng)))
            .collect()
    }

    #[test]
    fn recovers_parameters_of_pure_weibull() {
        let truth = Weibull3::two_param(461_386.0, 1.12).unwrap();
        let fit = rank_regression(&sample_failures(&truth, 2_000, 3)).unwrap();
        assert!((fit.beta - 1.12).abs() < 0.08, "beta = {}", fit.beta);
        assert!(
            (fit.eta - 461_386.0).abs() / 461_386.0 < 0.08,
            "eta = {}",
            fit.eta
        );
        assert!(fit.r_squared.unwrap() > 0.98);
    }

    #[test]
    fn handles_censored_vintage_data() {
        // Fig 2 vintage 3 shape: eta = 75,012, beta = 1.4873, observed
        // for up to 6,000 h -> heavy censoring.
        let truth = Weibull3::two_param(75_012.0, 1.4873).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let window = 6_000.0;
        let data: Vec<Observation> = (0..23_834)
            .map(|_| {
                let t = truth.sample(&mut rng);
                if t <= window {
                    Observation::failure(t)
                } else {
                    Observation::censored(window)
                }
            })
            .collect();
        let fit = rank_regression(&data).unwrap();
        // Rank regression is biased low under heavy censoring (the
        // reason `fit::mle` exists); accept a generous band here and
        // leave the tight recovery check to the MLE tests.
        assert!((fit.beta - 1.4873).abs() < 0.35, "beta = {}", fit.beta);
        // eta is an extrapolation 12x beyond the window and inherits the
        // beta bias; what the probability plot actually certifies is the
        // CDF *inside* the window. Require agreement there.
        let fitted = fit.to_distribution().unwrap();
        let rel = (fitted.cdf(window) - truth.cdf(window)).abs() / truth.cdf(window);
        assert!(rel < 0.15, "cdf mismatch at window edge: {rel}");
    }

    #[test]
    fn mixture_population_is_not_a_straight_line() {
        // Paper Fig 1: only a pure Weibull gives a straight line. A
        // strong mixture must fit visibly worse than a pure Weibull.
        let weak = Arc::new(Weibull3::two_param(500.0, 0.9).unwrap());
        let strong = Arc::new(Weibull3::two_param(300_000.0, 3.0).unwrap());
        let mix = Mixture::new(vec![(0.3, weak as _), (0.7, strong as _)]).unwrap();
        let fit_mix = rank_regression(&sample_failures(&mix, 3_000, 21)).unwrap();

        let pure = Weibull3::two_param(1_000.0, 1.2).unwrap();
        let fit_pure = rank_regression(&sample_failures(&pure, 3_000, 21)).unwrap();

        assert!(fit_mix.r_squared.unwrap() < fit_pure.r_squared.unwrap());
        assert!(fit_pure.r_squared.unwrap() > 0.99);
    }

    #[test]
    fn competing_risks_bend_the_plot_upward() {
        // Late-life wear-out on top of a shallow early slope: the last
        // decade of the plot is steeper than the first, which is the
        // "plot line bends upwards" observation for HDD #2.
        let early = Arc::new(Weibull3::two_param(2.0e6, 0.9).unwrap());
        let wear = Arc::new(Weibull3::two_param(40_000.0, 4.0).unwrap());
        let cr = CompetingRisks::new(vec![early as _, wear as _]).unwrap();
        let data = sample_failures(&cr, 4_000, 5);
        let pts = crate::empirical::johnson_ranks(&data);
        let k = pts.len() / 4;
        let slope = |pts: &[crate::empirical::PlotPoint]| {
            let n = pts.len() as f64;
            let xm = pts.iter().map(|p| p.x()).sum::<f64>() / n;
            let ym = pts.iter().map(|p| p.y()).sum::<f64>() / n;
            let sxy: f64 = pts.iter().map(|p| (p.x() - xm) * (p.y() - ym)).sum();
            let sxx: f64 = pts.iter().map(|p| (p.x() - xm).powi(2)).sum();
            sxy / sxx
        };
        let early_slope = slope(&pts[..k]);
        let late_slope = slope(&pts[pts.len() - k..]);
        assert!(
            late_slope > early_slope * 1.5,
            "early = {early_slope}, late = {late_slope}"
        );
    }

    #[test]
    fn rejects_insufficient_failures() {
        let data = [Observation::failure(10.0), Observation::censored(20.0)];
        assert!(matches!(
            rank_regression(&data),
            Err(DistError::InsufficientData { failures: 1, .. })
        ));
    }

    #[test]
    fn rejects_identical_times() {
        let data = [Observation::failure(10.0), Observation::failure(10.0)];
        assert!(rank_regression(&data).is_err());
    }

    #[test]
    fn rejects_nonpositive_times() {
        let data = [Observation::failure(0.0), Observation::failure(10.0)];
        assert!(rank_regression(&data).is_err());
    }
}
