use super::{mle, FittedWeibull};
use crate::empirical::Observation;
use crate::DistError;

/// A fitted three-parameter Weibull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedWeibull3 {
    /// Estimated location γ̂, hours.
    pub gamma: f64,
    /// The two-parameter fit of the shifted data.
    pub shifted: FittedWeibull,
}

impl FittedWeibull3 {
    /// Converts the fit into a [`crate::Weibull3`].
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] on degenerate estimates.
    pub fn to_distribution(&self) -> Result<crate::Weibull3, DistError> {
        crate::Weibull3::new(self.gamma, self.shifted.eta, self.shifted.beta)
    }
}

/// Maximum-likelihood fit of a **three-parameter** Weibull by profiling
/// the location: for each candidate `γ` the shifted data `tᵢ − γ` gets
/// a two-parameter MLE ([`mle`]), and a golden-section search maximizes
/// the profile likelihood over `γ ∈ [0, t₍₁₎)` (the smallest
/// observation bounds the location).
///
/// This is what you use on restore-time data: the paper's restore
/// distribution has a *physical minimum* ("there is a minimum time
/// before which the probability of being fully restored is zero"), and
/// ignoring it biases `β` upward.
///
/// # Errors
///
/// Propagates [`mle`] errors ([`DistError::InsufficientData`] etc.).
pub fn mle3(data: &[Observation]) -> Result<FittedWeibull3, DistError> {
    let t_min = data
        .iter()
        .filter(|o| o.failed)
        .map(|o| o.time)
        .fold(f64::INFINITY, f64::min);
    if !t_min.is_finite() {
        return Err(DistError::InsufficientData {
            failures: 0,
            required: 2,
        });
    }

    // Profile log-likelihood at location g (None if the fit fails).
    let profile = |g: f64| -> Option<f64> {
        let shifted: Vec<Observation> = data
            .iter()
            .map(|o| Observation {
                time: (o.time - g).max(1e-9),
                failed: o.failed,
            })
            .collect();
        mle(&shifted).ok().and_then(|f| f.log_likelihood)
    };

    // Golden-section search on [0, t_min * (1 - eps)]. The profile is
    // typically unimodal; if gamma = 0 dominates we converge there.
    let hi_bound = t_min * (1.0 - 1e-6);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (0.0f64, hi_bound.max(1e-12));
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = profile(x1).unwrap_or(f64::NEG_INFINITY);
    let mut f2 = profile(x2).unwrap_or(f64::NEG_INFINITY);
    for _ in 0..80 {
        if f1 >= f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = profile(x1).unwrap_or(f64::NEG_INFINITY);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = profile(x2).unwrap_or(f64::NEG_INFINITY);
        }
        if hi - lo < 1e-9 * t_min.max(1.0) {
            break;
        }
    }
    let mut gamma = 0.5 * (lo + hi);
    // Compare against the boundary gamma = 0 explicitly (the search
    // interior can miss a boundary optimum).
    if let (Some(f_in), Some(f_zero)) = (profile(gamma), profile(0.0)) {
        if f_zero >= f_in {
            gamma = 0.0;
        }
    }

    let shifted_data: Vec<Observation> = data
        .iter()
        .map(|o| Observation {
            time: (o.time - gamma).max(1e-9),
            failed: o.failed,
        })
        .collect();
    let shifted = mle(&shifted_data)?;
    Ok(FittedWeibull3 { gamma, shifted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LifeDistribution, Weibull3};
    use rand::SeedableRng;

    fn sample(truth: &Weibull3, n: usize, seed: u64) -> Vec<Observation> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Observation::failure(truth.sample(&mut rng)))
            .collect()
    }

    #[test]
    fn recovers_the_paper_restore_distribution() {
        // Weibull(6, 12, 2): the Table 2 restore. A two-parameter fit
        // gets beta badly wrong; the three-parameter fit nails all
        // three.
        let truth = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let data = sample(&truth, 4_000, 1);
        let fit3 = mle3(&data).unwrap();
        assert!((fit3.gamma - 6.0).abs() < 0.5, "gamma = {}", fit3.gamma);
        assert!(
            (fit3.shifted.beta - 2.0).abs() < 0.2,
            "beta = {}",
            fit3.shifted.beta
        );
        assert!(
            (fit3.shifted.eta - 12.0).abs() < 1.0,
            "eta = {}",
            fit3.shifted.eta
        );

        let fit2 = crate::fit::mle(&data).unwrap();
        assert!(
            fit2.beta > 2.5,
            "two-parameter fit should overestimate beta, got {}",
            fit2.beta
        );
    }

    #[test]
    fn zero_location_data_fits_near_zero_gamma() {
        let truth = Weibull3::two_param(1_000.0, 1.5).unwrap();
        let data = sample(&truth, 3_000, 2);
        let fit3 = mle3(&data).unwrap();
        // gamma must be small relative to the scale (a small positive
        // estimate is expected noise for a location bounded by t_min).
        assert!(fit3.gamma < 50.0, "gamma = {}", fit3.gamma);
        assert!((fit3.shifted.beta - 1.5).abs() < 0.15);
    }

    #[test]
    fn three_param_likelihood_dominates_two_param() {
        let truth = Weibull3::new(20.0, 50.0, 3.0).unwrap();
        let data = sample(&truth, 2_000, 3);
        let fit3 = mle3(&data).unwrap();
        let fit2 = crate::fit::mle(&data).unwrap();
        assert!(
            fit3.shifted.log_likelihood.unwrap() >= fit2.log_likelihood.unwrap() - 1e-6,
            "profile optimum cannot be worse than the gamma = 0 slice"
        );
        let d = fit3.to_distribution().unwrap();
        assert!((d.location() - 20.0).abs() < 2.0);
    }

    #[test]
    fn insufficient_data_is_rejected() {
        assert!(mle3(&[Observation::censored(10.0)]).is_err());
        assert!(mle3(&[Observation::failure(10.0)]).is_err());
    }

    #[test]
    fn censoring_is_handled() {
        let truth = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let data: Vec<Observation> = (0..4_000)
            .map(|_| {
                let t = truth.sample(&mut rng);
                if t <= 20.0 {
                    Observation::failure(t)
                } else {
                    Observation::censored(20.0)
                }
            })
            .collect();
        let fit3 = mle3(&data).unwrap();
        assert!((fit3.gamma - 6.0).abs() < 1.0, "gamma = {}", fit3.gamma);
    }
}
