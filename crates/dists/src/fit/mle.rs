use super::FittedWeibull;
use crate::empirical::Observation;
use crate::DistError;

/// Maximum-likelihood fit of a two-parameter Weibull to right-censored
/// life data.
///
/// The log-likelihood for failures `tᵢ` (set `F`) and suspensions `sⱼ`
/// (set `S`) is
///
/// ```text
/// ℓ(η, β) = Σ_F [ln β − β ln η + (β−1) ln tᵢ − (tᵢ/η)^β] − Σ_S (sⱼ/η)^β
/// ```
///
/// For fixed `β`, the score in `η` has the closed-form solution
/// `η̂^β = Σ_all t^β / r` (with `r` the failure count), leaving a
/// one-dimensional profile equation in `β` that is strictly monotone and
/// solved here by bracketed bisection — robust for the extreme censoring
/// levels in the paper's vintage data (Figure 2: up to 98% suspended).
///
/// # Errors
///
/// * [`DistError::InsufficientData`] with fewer than 2 failures.
/// * [`DistError::InvalidParameter`] for non-positive failure times.
/// * [`DistError::NoConvergence`] if the profile root cannot be
///   bracketed in `β ∈ [0.01, 100]` (pathological data).
pub fn mle(data: &[Observation]) -> Result<FittedWeibull, DistError> {
    let failures: Vec<f64> = data.iter().filter(|o| o.failed).map(|o| o.time).collect();
    let r = failures.len();
    let suspensions = data.len() - r;
    if r < 2 {
        return Err(DistError::InsufficientData {
            failures: r,
            required: 2,
        });
    }
    if failures.iter().any(|&t| t <= 0.0) {
        return Err(DistError::InvalidParameter {
            name: "time",
            value: failures.iter().copied().fold(f64::INFINITY, f64::min),
            constraint: "failure times must be > 0",
        });
    }

    // Scale all times by the max to keep t^beta in range for large beta.
    let t_max = data
        .iter()
        .map(|o| o.time)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let all: Vec<f64> = data.iter().map(|o| (o.time / t_max).max(1e-300)).collect();
    let fail_scaled: Vec<f64> = failures.iter().map(|&t| t / t_max).collect();
    let mean_ln_fail = fail_scaled.iter().map(|t| t.ln()).sum::<f64>() / r as f64;

    // Profile score: g(beta) = 1/beta + mean(ln t_F) - S1(beta)/S0(beta)
    // where S0 = sum t^beta, S1 = sum t^beta ln t over ALL observations.
    let score = |beta: f64| -> f64 {
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        for &t in &all {
            let tb = t.powf(beta);
            s0 += tb;
            s1 += tb * t.ln();
        }
        1.0 / beta + mean_ln_fail - s1 / s0
    };

    // g is strictly decreasing in beta; bracket the root.
    let (mut lo, mut hi) = (0.01, 100.0);
    if score(lo) < 0.0 || score(hi) > 0.0 {
        return Err(DistError::NoConvergence { iterations: 0 });
    }
    let mut iterations = 0;
    while hi - lo > 1e-10 * hi {
        let mid = 0.5 * (lo + hi);
        if score(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        iterations += 1;
        if iterations > 200 {
            return Err(DistError::NoConvergence { iterations });
        }
    }
    let beta = 0.5 * (lo + hi);

    let s0: f64 = all.iter().map(|&t| t.powf(beta)).sum();
    let eta_scaled = (s0 / r as f64).powf(1.0 / beta);
    let eta = eta_scaled * t_max;

    // Log-likelihood at the optimum (unscaled).
    let mut ll = 0.0;
    for &t in &failures {
        let z = t / eta;
        ll += beta.ln() - eta.ln() + (beta - 1.0) * z.ln() - z.powf(beta);
    }
    for o in data.iter().filter(|o| !o.failed) {
        ll -= (o.time / eta).powf(beta);
    }

    Ok(FittedWeibull {
        eta,
        beta,
        r_squared: None,
        log_likelihood: Some(ll),
        failures: r,
        suspensions,
    })
}

/// Maximum-likelihood estimate of an exponential rate from right-censored
/// data: `λ̂ = r / Σ_all tᵢ` (failures over total time on test).
///
/// Returns the rate per hour. This is the estimator behind every MTBF
/// number the MTTDL method consumes.
///
/// # Errors
///
/// Returns [`DistError::InsufficientData`] if there are no failures, and
/// [`DistError::InvalidParameter`] if total observed time is not
/// positive.
pub fn exponential_mle(data: &[Observation]) -> Result<f64, DistError> {
    let r = data.iter().filter(|o| o.failed).count();
    if r == 0 {
        return Err(DistError::InsufficientData {
            failures: 0,
            required: 1,
        });
    }
    let total: f64 = data.iter().map(|o| o.time).sum();
    if total <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "total_time",
            value: total,
            constraint: "total time on test must be > 0",
        });
    }
    Ok(r as f64 / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LifeDistribution, Weibull3};
    use rand::SeedableRng;

    fn censored_sample(truth: &Weibull3, n: usize, window: f64, seed: u64) -> Vec<Observation> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t = truth.sample(&mut rng);
                if t <= window {
                    Observation::failure(t)
                } else {
                    Observation::censored(window)
                }
            })
            .collect()
    }

    #[test]
    fn recovers_complete_sample_parameters() {
        let truth = Weibull3::two_param(1_000.0, 2.0).unwrap();
        let data = censored_sample(&truth, 3_000, f64::INFINITY, 4);
        let fit = mle(&data).unwrap();
        assert!((fit.beta - 2.0).abs() < 0.08, "beta = {}", fit.beta);
        assert!((fit.eta - 1_000.0).abs() < 30.0, "eta = {}", fit.eta);
        assert_eq!(fit.suspensions, 0);
    }

    #[test]
    fn recovers_fig2_vintage_parameters_under_heavy_censoring() {
        // Vintage 2 of Figure 2: eta = 125,660, beta = 1.2162, ~24k
        // units observed to 6,000 h.
        let truth = Weibull3::two_param(125_660.0, 1.2162).unwrap();
        let data = censored_sample(&truth, 24_056, 6_000.0, 12);
        let fit = mle(&data).unwrap();
        assert!((fit.beta - 1.2162).abs() < 0.1, "beta = {}", fit.beta);
        assert!(
            (fit.eta - 125_660.0).abs() / 125_660.0 < 0.3,
            "eta = {}",
            fit.eta
        );
        assert!(fit.suspensions > 20_000);
        assert!(fit.log_likelihood.unwrap().is_finite());
    }

    #[test]
    fn beta_one_mle_matches_exponential_mle() {
        let truth = Weibull3::two_param(9_259.0, 1.0).unwrap();
        let data = censored_sample(&truth, 5_000, 8_000.0, 6);
        let w = mle(&data).unwrap();
        let lambda = exponential_mle(&data).unwrap();
        assert!((w.beta - 1.0).abs() < 0.06, "beta = {}", w.beta);
        assert!(
            (1.0 / w.eta - lambda).abs() / lambda < 0.08,
            "weibull rate = {}, exp rate = {lambda}",
            1.0 / w.eta
        );
    }

    #[test]
    fn exponential_mle_is_failures_over_time() {
        let data = vec![
            Observation::failure(100.0),
            Observation::failure(200.0),
            Observation::censored(700.0),
        ];
        let lambda = exponential_mle(&data).unwrap();
        assert!((lambda - 2.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_too_few_failures() {
        assert!(matches!(
            mle(&[Observation::failure(10.0)]),
            Err(DistError::InsufficientData { .. })
        ));
        assert!(matches!(
            exponential_mle(&[Observation::censored(10.0)]),
            Err(DistError::InsufficientData { .. })
        ));
    }

    #[test]
    fn rejects_nonpositive_failure_time() {
        let data = [Observation::failure(-1.0), Observation::failure(10.0)];
        assert!(mle(&data).is_err());
    }

    #[test]
    fn large_time_scales_do_not_overflow() {
        // Times at the 1e5-hour scale with beta near 3 would overflow a
        // naive sum of t^beta in f32; make sure f64 + scaling is stable.
        let truth = Weibull3::two_param(4.5e5, 3.0).unwrap();
        let data = censored_sample(&truth, 2_000, f64::INFINITY, 9);
        let fit = mle(&data).unwrap();
        assert!((fit.beta - 3.0).abs() < 0.15);
    }
}
