use super::FittedWeibull;
use crate::empirical::Observation;
use crate::DistError;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval for one fitted parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamCi {
    /// Point estimate from the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.90`.
    pub level: f64,
}

impl ParamCi {
    /// Whether a hypothesized value lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Nonparametric bootstrap confidence intervals for a Weibull fit.
///
/// Resamples the observations with replacement `replicates` times,
/// refits with `fit_fn`, and returns percentile intervals for `(η, β)`.
/// Replicates where the estimator fails (degenerate resamples) are
/// skipped; at least half must succeed.
///
/// The paper's field-data conclusions ("HDD failure rates are rarely
/// constant") are only meaningful if `β ≠ 1` is outside the interval —
/// this is the tool that checks that.
///
/// # Errors
///
/// Propagates the fit error on the original data, and returns
/// [`DistError::NoConvergence`] if more than half of the bootstrap
/// replicates fail to fit.
///
/// # Example
///
/// ```
/// use raidsim_dists::empirical::Observation;
/// use raidsim_dists::fit::{bootstrap_ci, mle};
/// use raidsim_dists::{LifeDistribution, Weibull3};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// let truth = Weibull3::two_param(1000.0, 1.8)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let data: Vec<Observation> = (0..300)
///     .map(|_| Observation::failure(truth.sample(&mut rng)))
///     .collect();
/// let (eta_ci, beta_ci) = bootstrap_ci(&data, mle, 200, 0.90, 7)?;
/// assert!(beta_ci.contains(1.8));
/// assert!(!beta_ci.contains(1.0)); // decisively not exponential
/// # let _ = eta_ci;
/// # Ok(())
/// # }
/// ```
pub fn bootstrap_ci(
    data: &[Observation],
    fit_fn: fn(&[Observation]) -> Result<FittedWeibull, DistError>,
    replicates: usize,
    level: f64,
    seed: u64,
) -> Result<(ParamCi, ParamCi), DistError> {
    let base = fit_fn(data)?;
    let mut rng = crate::rng::stream(seed, 0);
    let mut etas = Vec::with_capacity(replicates);
    let mut betas = Vec::with_capacity(replicates);
    let mut resample = vec![Observation::failure(0.0); data.len()];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = data[rng.random_range(0..data.len())];
        }
        if let Ok(fit) = fit_fn(&resample) {
            etas.push(fit.eta);
            betas.push(fit.beta);
        }
    }
    if etas.len() * 2 < replicates {
        return Err(DistError::NoConvergence {
            iterations: replicates,
        });
    }
    let eta_ci = percentile_ci(&mut etas, base.eta, level);
    let beta_ci = percentile_ci(&mut betas, base.beta, level);
    Ok((eta_ci, beta_ci))
}

fn percentile_ci(values: &mut [f64], estimate: f64, level: f64) -> ParamCi {
    values.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((values.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((values.len() as f64) * (1.0 - alpha)).ceil() as usize)
        .min(values.len())
        .saturating_sub(1);
    ParamCi {
        estimate,
        lower: values[lo_idx.min(values.len() - 1)],
        upper: values[hi_idx],
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{mle, rank_regression};
    use crate::{LifeDistribution, Weibull3};
    use rand::SeedableRng;

    fn complete_sample(eta: f64, beta: f64, n: usize, seed: u64) -> Vec<Observation> {
        let truth = Weibull3::two_param(eta, beta).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Observation::failure(truth.sample(&mut rng)))
            .collect()
    }

    #[test]
    fn interval_covers_truth_for_mle() {
        let data = complete_sample(1_000.0, 1.5, 400, 1);
        let (eta_ci, beta_ci) = bootstrap_ci(&data, mle, 200, 0.95, 11).unwrap();
        assert!(eta_ci.contains(1_000.0), "{eta_ci:?}");
        assert!(beta_ci.contains(1.5), "{beta_ci:?}");
        assert!(eta_ci.lower < eta_ci.upper);
    }

    #[test]
    fn interval_covers_truth_for_rank_regression() {
        let data = complete_sample(500.0, 2.2, 400, 8);
        let (_, beta_ci) = bootstrap_ci(&data, rank_regression, 200, 0.95, 13).unwrap();
        assert!(beta_ci.contains(2.2), "{beta_ci:?}");
    }

    #[test]
    fn clearly_nonexponential_data_excludes_beta_one() {
        let data = complete_sample(1_000.0, 3.0, 500, 4);
        let (_, beta_ci) = bootstrap_ci(&data, mle, 200, 0.99, 5).unwrap();
        assert!(!beta_ci.contains(1.0), "{beta_ci:?}");
    }

    #[test]
    fn narrower_level_gives_narrower_interval() {
        let data = complete_sample(1_000.0, 1.5, 300, 6);
        let (_, wide) = bootstrap_ci(&data, mle, 300, 0.99, 17).unwrap();
        let (_, narrow) = bootstrap_ci(&data, mle, 300, 0.50, 17).unwrap();
        assert!(narrow.upper - narrow.lower < wide.upper - wide.lower);
    }

    #[test]
    fn propagates_base_fit_error() {
        let data = [Observation::failure(10.0)];
        assert!(bootstrap_ci(&data, mle, 50, 0.9, 1).is_err());
    }

    #[test]
    fn param_ci_contains_endpoints() {
        let ci = ParamCi {
            estimate: 1.0,
            lower: 0.5,
            upper: 1.5,
            level: 0.9,
        };
        assert!(ci.contains(0.5) && ci.contains(1.5) && !ci.contains(1.6));
    }
}
