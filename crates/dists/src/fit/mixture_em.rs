use crate::special::ln_gamma;
use crate::{DistError, Mixture, Weibull3};
use std::sync::Arc;

/// A fitted two-component Weibull mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedMixture {
    /// Weight of the first component.
    pub weight: f64,
    /// First component `(η, β)` — by convention the one with the
    /// smaller characteristic life (the "weak" sub-population).
    pub first: (f64, f64),
    /// Second component `(η, β)`.
    pub second: (f64, f64),
    /// Log-likelihood at convergence.
    pub log_likelihood: f64,
    /// EM iterations used.
    pub iterations: usize,
}

impl FittedMixture {
    /// Converts the fit into a [`Mixture`] distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] on degenerate estimates.
    pub fn to_distribution(&self) -> Result<Mixture, DistError> {
        Mixture::new(vec![
            (
                self.weight,
                Arc::new(Weibull3::two_param(self.first.0, self.first.1)?) as _,
            ),
            (
                1.0 - self.weight,
                Arc::new(Weibull3::two_param(self.second.0, self.second.1)?) as _,
            ),
        ])
    }
}

/// Expectation-maximization fit of a two-component Weibull mixture to
/// **complete** (uncensored) failure times.
///
/// This is the estimator behind the paper's Figure 1 reading of
/// HDD #3: "In mixed populations, some of the HDDs have a failure
/// mechanism that the others do not have". When a single Weibull fits
/// poorly (curved probability plot), the mixture fit separates the
/// weak sub-population and quantifies its share.
///
/// The E-step computes component responsibilities; the M-step solves
/// the *weighted* censoring-free Weibull MLE per component (profile
/// bisection on the shape, closed-form scale). Initialization splits
/// the sample at the median; EM runs until the log-likelihood gain
/// drops below `1e-8` per observation or 500 iterations.
///
/// Right-censored data is not supported (the reproduction only needs
/// complete synthetic samples); extend with censored weighted MLE if
/// field use requires it.
///
/// # Errors
///
/// * [`DistError::InsufficientData`] with fewer than 10 failures
///   (mixtures need real sample sizes).
/// * [`DistError::InvalidParameter`] for non-positive times.
/// * [`DistError::NoConvergence`] if EM degenerates (a component's
///   weight collapses below 1e-4).
pub fn mixture_em(times: &[f64]) -> Result<FittedMixture, DistError> {
    if times.len() < 10 {
        return Err(DistError::InsufficientData {
            failures: times.len(),
            required: 10,
        });
    }
    if times.iter().any(|&t| !t.is_finite() || t <= 0.0) {
        return Err(DistError::InvalidParameter {
            name: "time",
            value: f64::NAN,
            constraint: "failure times must be finite and > 0",
        });
    }

    // Initialize by a median split.
    let mut sorted = times.to_vec();
    sorted.sort_by(f64::total_cmp);
    let half = sorted.len() / 2;
    let mut comp1 = weighted_weibull_mle(&sorted[..half], None)?;
    let mut comp2 = weighted_weibull_mle(&sorted[half..], None)?;
    let mut weight = 0.5f64;

    let n = times.len() as f64;
    let mut last_ll = f64::NEG_INFINITY;
    let mut resp = vec![0.0f64; times.len()];
    for iteration in 0..500 {
        // E-step: responsibility of component 1 for each observation,
        // computed in log space for stability.
        let mut ll = 0.0;
        for (r, &t) in resp.iter_mut().zip(times) {
            let l1 = weight.ln() + log_weibull_pdf(t, comp1.0, comp1.1);
            let l2 = (1.0 - weight).ln() + log_weibull_pdf(t, comp2.0, comp2.1);
            let max = l1.max(l2);
            let denom = max + ((l1 - max).exp() + (l2 - max).exp()).ln();
            *r = (l1 - denom).exp();
            ll += denom;
        }

        // M-step.
        let w1: f64 = resp.iter().sum();
        weight = w1 / n;
        if !(1e-4..=1.0 - 1e-4).contains(&weight) {
            return Err(DistError::NoConvergence {
                iterations: iteration,
            });
        }
        comp1 = weighted_weibull_mle(times, Some(&resp))?;
        let resp2: Vec<f64> = resp.iter().map(|r| 1.0 - r).collect();
        comp2 = weighted_weibull_mle(times, Some(&resp2))?;

        if (ll - last_ll).abs() < 1e-8 * n && iteration > 3 {
            return Ok(order(FittedMixture {
                weight,
                first: comp1,
                second: comp2,
                log_likelihood: ll,
                iterations: iteration + 1,
            }));
        }
        last_ll = ll;
    }
    Ok(order(FittedMixture {
        weight,
        first: comp1,
        second: comp2,
        log_likelihood: last_ll,
        iterations: 500,
    }))
}

/// Log-likelihood of a *single* two-parameter Weibull MLE on the same
/// data — the null model the mixture is compared against (a large
/// improvement means the population really is mixed).
///
/// # Errors
///
/// Propagates the single-Weibull fit errors.
pub fn single_weibull_log_likelihood(times: &[f64]) -> Result<f64, DistError> {
    let (eta, beta) = weighted_weibull_mle(times, None)?;
    Ok(times.iter().map(|&t| log_weibull_pdf(t, eta, beta)).sum())
}

fn log_weibull_pdf(t: f64, eta: f64, beta: f64) -> f64 {
    let z = t / eta;
    beta.ln() - eta.ln() + (beta - 1.0) * z.ln() - z.powf(beta)
}

/// Weighted complete-sample Weibull MLE; `weights = None` means unit
/// weights. Returns `(eta, beta)`.
fn weighted_weibull_mle(times: &[f64], weights: Option<&[f64]>) -> Result<(f64, f64), DistError> {
    let w = |i: usize| weights.map_or(1.0, |w| w[i]);
    let total: f64 = (0..times.len()).map(&w).sum();
    if total <= 1e-9 {
        return Err(DistError::NoConvergence { iterations: 0 });
    }
    let t_max = times.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    let scaled: Vec<f64> = times.iter().map(|&t| t / t_max).collect();
    let mean_ln: f64 = (0..scaled.len())
        .map(|i| w(i) * scaled[i].ln())
        .sum::<f64>()
        / total;

    let score = |beta: f64| -> f64 {
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        for (i, &t) in scaled.iter().enumerate() {
            let tb = w(i) * t.powf(beta);
            s0 += tb;
            s1 += tb * t.ln();
        }
        1.0 / beta + mean_ln - s1 / s0
    };
    let (mut lo, mut hi) = (0.05, 60.0);
    if score(lo) < 0.0 || score(hi) > 0.0 {
        return Err(DistError::NoConvergence { iterations: 0 });
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if score(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let beta = 0.5 * (lo + hi);
    let s0: f64 = (0..scaled.len()).map(|i| w(i) * scaled[i].powf(beta)).sum();
    let eta = t_max * (s0 / total).powf(1.0 / beta);
    // Guard against numerically absurd shapes (keeps ln_gamma happy in
    // downstream moment computations).
    let _ = ln_gamma(1.0 + 1.0 / beta);
    Ok((eta, beta))
}

fn order(mut fit: FittedMixture) -> FittedMixture {
    if fit.first.0 > fit.second.0 {
        std::mem::swap(&mut fit.first, &mut fit.second);
        fit.weight = 1.0 - fit.weight;
    }
    fit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use crate::LifeDistribution;

    fn draw_mixture(w: f64, a: (f64, f64), b: (f64, f64), n: usize, seed: u64) -> Vec<f64> {
        let mix = Mixture::new(vec![
            (w, Arc::new(Weibull3::two_param(a.0, a.1).unwrap()) as _),
            (
                1.0 - w,
                Arc::new(Weibull3::two_param(b.0, b.1).unwrap()) as _,
            ),
        ])
        .unwrap();
        let mut rng = stream(seed, 0);
        (0..n).map(|_| mix.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_well_separated_components() {
        // 20% weak population (eta 500) vs healthy (eta 100,000).
        let times = draw_mixture(0.2, (500.0, 1.0), (100_000.0, 1.5), 8_000, 1);
        let fit = mixture_em(&times).unwrap();
        assert!((fit.weight - 0.2).abs() < 0.03, "weight = {}", fit.weight);
        assert!(
            (fit.first.0 - 500.0).abs() / 500.0 < 0.2,
            "eta1 = {}",
            fit.first.0
        );
        assert!(
            (fit.second.0 - 100_000.0).abs() / 100_000.0 < 0.2,
            "eta2 = {}",
            fit.second.0
        );
        assert!(fit.iterations < 500);
    }

    #[test]
    fn mixture_beats_single_weibull_on_mixed_data() {
        let times = draw_mixture(0.3, (1_000.0, 0.9), (200_000.0, 2.0), 4_000, 2);
        let fit = mixture_em(&times).unwrap();
        let single = single_weibull_log_likelihood(&times).unwrap();
        // A real mixture should gain enormously (hundreds of nats).
        assert!(
            fit.log_likelihood > single + 100.0,
            "mixture {} vs single {single}",
            fit.log_likelihood
        );
    }

    #[test]
    fn single_population_gains_little() {
        let truth = Weibull3::two_param(10_000.0, 1.3).unwrap();
        let mut rng = stream(3, 0);
        let times: Vec<f64> = (0..3_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = mixture_em(&times).unwrap();
        let single = single_weibull_log_likelihood(&times).unwrap();
        // Two extra parameters buy only a trivial improvement.
        assert!(
            fit.log_likelihood - single < 15.0,
            "gain = {}",
            fit.log_likelihood - single
        );
    }

    #[test]
    fn components_are_ordered_by_scale() {
        let times = draw_mixture(0.7, (100_000.0, 1.5), (800.0, 1.0), 5_000, 4);
        let fit = mixture_em(&times).unwrap();
        assert!(fit.first.0 < fit.second.0);
        // 30% weak (the generator's second component).
        assert!((fit.weight - 0.3).abs() < 0.05, "weight = {}", fit.weight);
    }

    #[test]
    fn fitted_distribution_matches_data_cdf() {
        let times = draw_mixture(0.25, (600.0, 1.1), (150_000.0, 1.4), 6_000, 5);
        let fit = mixture_em(&times).unwrap();
        let dist = fit.to_distribution().unwrap();
        let below = times.iter().filter(|&&t| t <= 2_000.0).count() as f64 / times.len() as f64;
        assert!(
            (dist.cdf(2_000.0) - below).abs() < 0.03,
            "model {}, empirical {below}",
            dist.cdf(2_000.0)
        );
    }

    #[test]
    fn rejects_insufficient_or_bad_data() {
        assert!(mixture_em(&[1.0; 5]).is_err());
        assert!(mixture_em(&[0.0; 20]).is_err());
        let mut with_nan = vec![1.0; 20];
        with_nan[3] = f64::NAN;
        assert!(mixture_em(&with_nan).is_err());
    }
}
