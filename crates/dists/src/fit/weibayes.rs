use crate::empirical::Observation;
use crate::DistError;

/// Weibayes estimation: characteristic life with a **known shape**.
///
/// Early in a vintage's life there are too few failures to fit both
/// Weibull parameters (the paper's vintage 1 had 198 failures among
/// 10,631 drives — and a brand-new vintage has near zero). Weibayes
/// fixes `β` from engineering knowledge (e.g. the previous vintage's
/// fit) and estimates only the scale:
///
/// ```text
/// η̂ = ( Σᵢ tᵢ^β / r )^(1/β)
/// ```
///
/// with the sum over *all* units (failures and suspensions) and `r`
/// the failure count. With zero failures, the convention `r = 1`
/// yields a conservative lower bound on `η` (the "Weibayes lower
/// bound"): the true η is larger with ~63% confidence.
///
/// # Errors
///
/// Returns [`DistError::InvalidParameter`] for a non-positive `beta`
/// or non-positive observation times, and [`DistError::InsufficientData`]
/// for an empty data set.
///
/// # Example
///
/// ```
/// use raidsim_dists::empirical::Observation;
/// use raidsim_dists::fit::weibayes;
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // 1,000 drives ran 6,000 h with zero failures; shape assumed 1.12.
/// let fleet: Vec<Observation> = (0..1_000)
///     .map(|_| Observation::censored(6_000.0))
///     .collect();
/// let eta_lower = weibayes(&fleet, 1.12)?;
/// assert!(eta_lower > 100_000.0); // the vintage is demonstrably good
/// # Ok(())
/// # }
/// ```
pub fn weibayes(data: &[Observation], beta: f64) -> Result<f64, DistError> {
    if !beta.is_finite() || beta <= 0.0 {
        return Err(DistError::InvalidParameter {
            name: "beta",
            value: beta,
            constraint: "must be finite and > 0",
        });
    }
    if data.is_empty() {
        return Err(DistError::InsufficientData {
            failures: 0,
            required: 1,
        });
    }
    if data.iter().any(|o| !o.time.is_finite() || o.time < 0.0) {
        return Err(DistError::InvalidParameter {
            name: "time",
            value: f64::NAN,
            constraint: "observation times must be finite and >= 0",
        });
    }
    let r = data.iter().filter(|o| o.failed).count().max(1) as f64;
    // Scale by the max time for numerical stability at large beta.
    let t_max = data
        .iter()
        .map(|o| o.time)
        .fold(f64::MIN_POSITIVE, f64::max);
    let sum: f64 = data.iter().map(|o| (o.time / t_max).powf(beta)).sum();
    Ok(t_max * (sum / r).powf(1.0 / beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LifeDistribution, Weibull3};
    use rand::SeedableRng;

    #[test]
    fn recovers_eta_with_known_shape_and_few_failures() {
        // 30 failures in a heavily censored study — far too few for a
        // stable two-parameter fit, plenty for Weibayes.
        let truth = Weibull3::two_param(125_660.0, 1.2162).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let window = 2_000.0;
        let data: Vec<Observation> = (0..8_000)
            .map(|_| {
                let t = truth.sample(&mut rng);
                if t <= window {
                    Observation::failure(t)
                } else {
                    Observation::censored(window)
                }
            })
            .collect();
        let failures = data.iter().filter(|o| o.failed).count();
        assert!(failures < 80, "want a sparse study, got {failures}");
        let eta = weibayes(&data, 1.2162).unwrap();
        // Weibayes relative sd ~ 1/(beta*sqrt(r)) ~ 11% at ~50
        // failures; allow 3 sigma.
        assert!(
            (eta - 125_660.0).abs() / 125_660.0 < 0.35,
            "eta = {eta} from {failures} failures"
        );
    }

    #[test]
    fn zero_failures_give_conservative_lower_bound() {
        let data: Vec<Observation> = (0..500).map(|_| Observation::censored(6_000.0)).collect();
        let eta = weibayes(&data, 1.0).unwrap();
        // With beta = 1: eta = total time on test / 1 = 3,000,000.
        assert!((eta - 3.0e6).abs() < 1.0);
    }

    #[test]
    fn matches_exponential_mle_at_beta_one() {
        use crate::fit::exponential_mle;
        let data = vec![
            Observation::failure(100.0),
            Observation::failure(300.0),
            Observation::censored(600.0),
        ];
        let eta = weibayes(&data, 1.0).unwrap();
        let lambda = exponential_mle(&data).unwrap();
        assert!((eta - 1.0 / lambda).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = [Observation::failure(10.0)];
        assert!(weibayes(&data, 0.0).is_err());
        assert!(weibayes(&[], 1.0).is_err());
        assert!(weibayes(&[Observation::failure(-1.0)], 1.0).is_err());
    }

    #[test]
    fn large_beta_is_numerically_stable() {
        let data: Vec<Observation> = (0..100).map(|_| Observation::censored(4.5e5)).collect();
        let eta = weibayes(&data, 5.0).unwrap();
        assert!(eta.is_finite() && eta > 4.5e5);
    }
}
