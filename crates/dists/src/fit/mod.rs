//! Weibull parameter estimation from (right-censored) life data.
//!
//! The estimator family matches standard reliability practice and the
//! plots in the paper:
//!
//! * [`rank_regression`] — median-rank regression on Weibull probability
//!   paper. This is what the straight lines in paper Figures 1 and 2 are:
//!   a least-squares fit to the plotting positions. It also yields the
//!   `R²` used to judge "a straight line indicates a good fit".
//! * [`mle`] — maximum-likelihood estimation, preferred for heavily
//!   censored samples such as the vintage data of Figure 2 (e.g. 198
//!   failures among 10,631 drives).
//! * [`mle3`] — three-parameter MLE (profiled location), for data with a
//!   physical minimum such as restore times.
//! * [`mixture_em`] — two-component Weibull mixture via EM, the
//!   quantitative form of Figure 1's "population mixture" reading.
//! * [`weibayes`] — known-shape scale estimation for sparse-failure
//!   vintage monitoring (including the zero-failure lower bound).
//!
//! [`bootstrap_ci`] wraps the estimators with nonparametric bootstrap
//! confidence intervals, and [`ks_statistic`] provides goodness-of-fit
//! statistics.

mod bootstrap;
mod ks;
mod mixture_em;
mod mle;
mod rank_regression;
mod three_param;
mod weibayes;

pub use bootstrap::{bootstrap_ci, ParamCi};
pub use ks::{ks_critical_value, ks_statistic};
pub use mixture_em::{mixture_em, single_weibull_log_likelihood, FittedMixture};
pub use mle::{exponential_mle, mle};
pub use rank_regression::rank_regression;
pub use three_param::{mle3, FittedWeibull3};
pub use weibayes::weibayes;

use crate::{DistError, Weibull3};
use serde::{Deserialize, Serialize};

/// Result of fitting a two-parameter Weibull to life data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedWeibull {
    /// Estimated characteristic life `η̂`, in hours.
    pub eta: f64,
    /// Estimated shape `β̂`.
    pub beta: f64,
    /// Coefficient of determination of the probability-plot regression
    /// (`None` for MLE fits).
    pub r_squared: Option<f64>,
    /// Maximized log-likelihood (`None` for rank-regression fits).
    pub log_likelihood: Option<f64>,
    /// Number of exact failures used.
    pub failures: usize,
    /// Number of right-censored observations used.
    pub suspensions: usize,
}

impl FittedWeibull {
    /// Converts the fit into a usable [`Weibull3`] distribution (γ = 0).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if the estimates are
    /// degenerate (should not happen for fits produced by this module).
    pub fn to_distribution(&self) -> Result<Weibull3, DistError> {
        Weibull3::two_param(self.eta, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_weibull_converts_to_distribution() {
        let f = FittedWeibull {
            eta: 461_386.0,
            beta: 1.12,
            r_squared: Some(0.99),
            log_likelihood: None,
            failures: 100,
            suspensions: 0,
        };
        let d = f.to_distribution().unwrap();
        assert_eq!(d.scale(), 461_386.0);
        assert_eq!(d.shape(), 1.12);
    }
}
