//! Deterministic RNG stream utilities.
//!
//! The sequential Monte Carlo model runs tens of thousands of independent
//! system histories, often across threads. Reproducibility requires that
//! each history gets its own RNG stream derived deterministically from a
//! master seed — never a shared stream whose consumption order depends on
//! scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the simulation ([`StdRng`], currently
/// xoshiro256++ — fast, high-quality, and deterministic per seed).
pub type SimRng = StdRng;

/// Derives a child seed from a master seed and a stream index using the
/// SplitMix64 finalizer — a bijective avalanche mix, so distinct
/// `(seed, index)` pairs never collide on the same child seed for a
/// fixed `seed`.
///
/// # Example
///
/// ```
/// use raidsim_dists::rng::{child_seed, stream};
/// use rand::Rng;
///
/// let a = child_seed(42, 0);
/// let b = child_seed(42, 1);
/// assert_ne!(a, b);
/// // Streams for the same pair are identical and independent of the
/// // order in which other streams are consumed.
/// assert_eq!(stream(42, 7).next_u64(), stream(42, 7).next_u64());
/// ```
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the RNG for stream `index` of master seed `master`.
pub fn stream(master: u64, index: u64) -> SimRng {
    SimRng::seed_from_u64(child_seed(master, index))
}

/// Fills `out` with uniform variates on `[0, 1)`, consuming exactly one
/// RNG word per element in stream order.
///
/// Element `i` is bit-identical to the `i`-th scalar uniform the
/// sampling kernels would have drawn from the same RNG state (the
/// 53-bit `next_u64` conversion), so block-filling a buffer and then
/// transforming it densely leaves both the RNG stream position and the
/// produced floats unchanged relative to the one-at-a-time path. This
/// is the foundation of the block-draw bit-identity contract (DESIGN.md
/// §18).
pub fn fill_uniforms(rng: &mut dyn rand::Rng, out: &mut [f64]) {
    for u in out.iter_mut() {
        *u = crate::rng_f64(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_are_distinct_for_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(child_seed(123, i)), "collision at index {i}");
        }
    }

    #[test]
    fn child_seeds_differ_across_masters() {
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = stream(99, 5);
        let mut b = stream(99, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_different_indices_diverge_immediately() {
        let mut a = stream(99, 5);
        let mut b = stream(99, 6);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_uniforms_matches_scalar_draws_word_for_word() {
        let mut block = stream(4, 2);
        let mut scalar = stream(4, 2);
        let mut buf = [0.0f64; 64];
        fill_uniforms(&mut block, &mut buf);
        for (i, &u) in buf.iter().enumerate() {
            assert_eq!(
                u.to_bits(),
                crate::rng_f64(&mut scalar).to_bits(),
                "element {i} diverged from the scalar conversion"
            );
        }
        // Both streams must sit at the same position afterwards.
        assert_eq!(block.next_u64(), scalar.next_u64());
    }

    #[test]
    fn adjacent_indices_have_uncorrelated_low_bits() {
        // Crude avalanche check: popcount of XOR of adjacent child seeds
        // should hover around 32.
        let mut total = 0u32;
        let n = 1000u64;
        for i in 0..n {
            total += (child_seed(7, i) ^ child_seed(7, i + 1)).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 32.0).abs() < 2.0, "avg popcount = {avg}");
    }
}
