//! Deterministic RNG stream utilities.
//!
//! The sequential Monte Carlo model runs tens of thousands of independent
//! system histories, often across threads. Reproducibility requires that
//! each history gets its own RNG stream derived deterministically from a
//! master seed — never a shared stream whose consumption order depends on
//! scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the simulation ([`StdRng`], currently
/// xoshiro256++ — fast, high-quality, and deterministic per seed).
pub type SimRng = StdRng;

/// Derives a child seed from a master seed and a stream index using the
/// SplitMix64 finalizer — a bijective avalanche mix, so distinct
/// `(seed, index)` pairs never collide on the same child seed for a
/// fixed `seed`.
///
/// # Example
///
/// ```
/// use raidsim_dists::rng::{child_seed, stream};
/// use rand::Rng;
///
/// let a = child_seed(42, 0);
/// let b = child_seed(42, 1);
/// assert_ne!(a, b);
/// // Streams for the same pair are identical and independent of the
/// // order in which other streams are consumed.
/// assert_eq!(stream(42, 7).next_u64(), stream(42, 7).next_u64());
/// ```
pub fn child_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the RNG for stream `index` of master seed `master`.
pub fn stream(master: u64, index: u64) -> SimRng {
    SimRng::seed_from_u64(child_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_are_distinct_for_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(child_seed(123, i)), "collision at index {i}");
        }
    }

    #[test]
    fn child_seeds_differ_across_masters() {
        assert_ne!(child_seed(1, 0), child_seed(2, 0));
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = stream(99, 5);
        let mut b = stream(99, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_with_different_indices_diverge_immediately() {
        let mut a = stream(99, 5);
        let mut b = stream(99, 6);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn adjacent_indices_have_uncorrelated_low_bits() {
        // Crude avalanche check: popcount of XOR of adjacent child seeds
        // should hover around 32.
        let mut total = 0u32;
        let n = 1000u64;
        for i in 0..n {
            total += (child_seed(7, i) ^ child_seed(7, i + 1)).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 32.0).abs() < 2.0, "avg popcount = {avg}");
    }
}
