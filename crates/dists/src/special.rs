//! Special functions needed for Weibull moments and fitting.
//!
//! Only the gamma function family is required; we implement the Lanczos
//! approximation rather than pulling in a numerics crate.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to ~1e-13 over
/// the domain used by this crate (Weibull moments with shape ≥ 0.1).
///
/// # Panics
///
/// Panics if `x` is not finite and positive.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma domain error: x = {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not finite and positive.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Mean of a two-parameter Weibull with scale `eta` and shape `beta`:
/// `η · Γ(1 + 1/β)`.
pub fn weibull_mean(eta: f64, beta: f64) -> f64 {
    eta * gamma(1.0 + 1.0 / beta)
}

/// Variance of a two-parameter Weibull with scale `eta` and shape `beta`:
/// `η² [Γ(1 + 2/β) − Γ(1 + 1/β)²]`.
pub fn weibull_variance(eta: f64, beta: f64) -> f64 {
    let g1 = gamma(1.0 + 1.0 / beta);
    let g2 = gamma(1.0 + 2.0 / beta);
    eta * eta * (g2 - g1 * g1)
}

/// The error function `erf(x)`, by the Abramowitz–Stegun 7.1.26
/// rational approximation (absolute error < 1.5×10⁻⁷ — ample for
/// simulation-grade probabilities; see the accuracy notes on
/// [`inv_std_normal`]).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    // A&S 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    y.min(1.0)
}

/// Standard normal CDF `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |ε| < 1.15×10⁻⁹).
///
/// Note that [`std_normal_cdf`] carries the larger (1.5×10⁻⁷) error of
/// the `erf` approximation, so `Φ(Φ⁻¹(p))` round-trips to ~10⁻⁷, not
/// machine precision — adequate for every use in this workspace
/// (sampling and tail probabilities of simulations with ≥10⁻³
/// statistical noise).
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
pub fn inv_std_normal(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;

    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_std_normal(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(5) = 24.
        for (x, expected) in [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (4.0, 6.0), (5.0, 24.0)] {
            assert!(
                (gamma(x) - expected).abs() < 1e-10 * expected,
                "gamma({x}) = {}",
                gamma(x)
            );
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn gamma_recurrence_holds() {
        // Γ(x+1) = x Γ(x) across the domain we care about.
        for i in 1..200 {
            let x = i as f64 * 0.05;
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "recurrence failed at x = {x}"
            );
        }
    }

    #[test]
    fn exponential_mean_is_scale() {
        // beta = 1 reduces the Weibull to an exponential with mean eta.
        assert!((weibull_mean(461_386.0, 1.0) - 461_386.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_variance_is_scale_squared() {
        let eta = 123.0;
        assert!((weibull_variance(eta, 1.0) - eta * eta).abs() < 1e-6);
    }

    #[test]
    fn rayleigh_mean_matches_closed_form() {
        // beta = 2 gives mean = eta * sqrt(pi) / 2.
        let eta = 12.0;
        let expected = eta * std::f64::consts::PI.sqrt() / 2.0;
        assert!((weibull_mean(eta, 2.0) - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ln_gamma domain error")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_known_values() {
        // erf(0) = 0, erf(1) = 0.8427007929, erf(2) = 0.9953222650.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd function
        assert!(erf(6.0) <= 1.0 && erf(6.0) > 0.999_999_99);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((std_normal_cdf(1.959_964) - 0.975).abs() < 2e-7);
        assert!((std_normal_cdf(-1.959_964) - 0.025).abs() < 2e-7);
    }

    #[test]
    fn inv_normal_known_values() {
        assert!(inv_std_normal(0.5).abs() < 1e-8);
        assert!((inv_std_normal(0.975) - 1.959_964).abs() < 1e-5);
        assert!((inv_std_normal(0.025) + 1.959_964).abs() < 1e-5);
        assert!((inv_std_normal(0.999_9) - 3.719_02).abs() < 1e-4);
    }

    #[test]
    fn inv_normal_round_trips_within_erf_accuracy() {
        for &p in &[0.001, 0.1, 0.3, 0.5, 0.9, 0.999] {
            let z = inv_std_normal(p);
            assert!((std_normal_cdf(z) - p).abs() < 5e-7, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn inv_normal_rejects_out_of_range() {
        inv_std_normal(1.0);
    }
}
