//! Probability distributions and statistical estimation substrate for
//! `raidsim`.
//!
//! This crate provides everything the Elerath–Pecht (DSN 2007) RAID
//! reliability model needs from probability theory:
//!
//! * [`Weibull3`] — the three-parameter Weibull distribution used for all
//!   four model transitions (time to operational failure, restore, latent
//!   defect, scrub), with location (`γ`), scale (`η`) and shape (`β`)
//!   parameters, closed-form moments, hazard functions and inverse-CDF
//!   sampling.
//! * [`Exponential`] — the constant-rate special case (`β = 1`), kept as a
//!   distinct type because the paper's whole argument is about the
//!   difference between the two.
//! * [`Mixture`] and [`CompetingRisks`] — the population structures the
//!   paper identifies in field data (Figure 1: "characteristics of both
//!   competing risks and population mixtures").
//! * [`Lognormal`] — the other standard repair-time family, used by the
//!   restore-sensitivity ablation; [`Degenerate`] — a point mass, used
//!   to drive the engines through hand-computable schedules in tests.
//! * [`fit`] — Weibull parameter estimation from (right-censored) field
//!   data: median-rank regression for probability plots (Figures 1 and 2)
//!   and maximum-likelihood estimation, plus bootstrap confidence
//!   intervals and Kolmogorov–Smirnov goodness-of-fit.
//! * [`empirical`] — empirical CDF, Kaplan–Meier estimator and median
//!   ranks (Benard's approximation) for plotting positions.
//! * [`rng`] — deterministic seed-stream utilities so simulations are
//!   reproducible even when run across threads.
//!
//! # Example
//!
//! ```
//! use raidsim_dists::{LifeDistribution, Weibull3};
//!
//! # fn main() -> Result<(), raidsim_dists::DistError> {
//! // The paper's base-case time-to-operational-failure distribution:
//! // eta = 461,386 h, beta = 1.12 (Section 6.1).
//! let ttop = Weibull3::new(0.0, 461_386.0, 1.12)?;
//! assert!(ttop.mean() > 400_000.0);
//!
//! // The hazard rate is increasing because beta > 1.
//! assert!(ttop.hazard(10_000.0) < ttop.hazard(80_000.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod competing;
mod degenerate;
mod error;
mod exponential;
mod lognormal;
mod mixture;
mod weibull;

pub mod empirical;
pub mod fit;
pub mod kernel;
pub mod kernel_cache;
pub mod rng;
pub mod special;

pub use competing::CompetingRisks;
pub use degenerate::Degenerate;
pub use error::DistError;
pub use exponential::Exponential;
pub use kernel::SampleKernel;
pub use kernel_cache::KernelCache;
pub use lognormal::Lognormal;
pub use mixture::Mixture;
pub use weibull::Weibull3;

use rand::Rng;

/// A continuous, non-negative lifetime distribution.
///
/// All times are in hours, matching the paper's units. Implementations
/// must satisfy the standard relationships between the reliability
/// functions; the property-test suite in this crate checks them for every
/// provided implementation:
///
/// * `cdf` is non-decreasing with `cdf(0⁻) = 0` and `cdf(∞) = 1`,
/// * `sf(t) = 1 - cdf(t)`,
/// * `hazard(t) = pdf(t) / sf(t)` wherever `sf(t) > 0`,
/// * `quantile(cdf(t)) ≈ t` on the support,
/// * `sample` draws follow `cdf` (Kolmogorov–Smirnov bound).
///
/// The trait is object-safe: the simulation engine stores the four model
/// transitions as `Box<dyn LifeDistribution>` so that operational
/// failures, restores, latent defects and scrubs can each use a different
/// distribution family (paper Section 6).
pub trait LifeDistribution: std::fmt::Debug + Send + Sync {
    /// Cumulative distribution function `F(t) = P(T ≤ t)`.
    fn cdf(&self, t: f64) -> f64;

    /// Probability density function `f(t)`.
    fn pdf(&self, t: f64) -> f64;

    /// Quantile function (inverse CDF). `p` must be in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `p` is outside `[0, 1)`; the provided
    /// distributions saturate instead (returning the support minimum for
    /// `p ≤ 0`).
    fn quantile(&self, p: f64) -> f64;

    /// Mean of the distribution, in hours.
    fn mean(&self) -> f64;

    /// Survival function `S(t) = 1 - F(t)`.
    fn sf(&self, t: f64) -> f64 {
        (1.0 - self.cdf(t)).max(0.0)
    }

    /// Hazard (instantaneous failure) rate `h(t) = f(t) / S(t)`.
    ///
    /// Returns `f64::INFINITY` where the survival function is zero.
    fn hazard(&self, t: f64) -> f64 {
        let s = self.sf(t);
        if s <= 0.0 {
            f64::INFINITY
        } else {
            self.pdf(t) / s
        }
    }

    /// Cumulative hazard `H(t) = -ln S(t)`.
    fn cum_hazard(&self, t: f64) -> f64 {
        let s = self.sf(t);
        if s <= 0.0 {
            f64::INFINITY
        } else {
            -s.ln()
        }
    }

    /// Draws one sample using inverse-transform sampling.
    ///
    /// The default implementation applies [`LifeDistribution::quantile`]
    /// to a uniform variate, which is correct for any implementation with
    /// an exact quantile function.
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u = rng_f64(rng);
        self.quantile(u)
    }

    /// Draws a residual lifetime conditional on survival to `t0`.
    ///
    /// Returns the *additional* time beyond `t0`. Used when a process is
    /// known to have survived an observation window. The default
    /// implementation inverts the conditional CDF
    /// `F(t | T > t0) = (F(t0 + t) - F(t0)) / S(t0)`.
    fn sample_conditional(&self, t0: f64, rng: &mut dyn Rng) -> f64 {
        let s0 = self.sf(t0);
        if s0 <= 0.0 {
            return 0.0;
        }
        let u = rng_f64(rng);
        let p = self.cdf(t0) + u * s0;
        (self.quantile(p) - t0).max(0.0)
    }

    /// Lowers this distribution to a monomorphic sampling kernel
    /// ([`SampleKernel`]) whose draws are **bit-identical** to
    /// [`LifeDistribution::sample`] and
    /// [`LifeDistribution::sample_conditional`] — see the contract in
    /// [`kernel`]. The default returns `None`, which makes
    /// [`SampleKernel::lower`] fall back to the boxed `dyn` path, so
    /// implementations without a kernel keep working unchanged.
    fn lower_kernel(&self) -> Option<SampleKernel> {
        None
    }
}

/// Uniform variate in `[0, 1)` from a dynamic RNG.
///
/// `rand`'s ergonomic helpers require `Sized` RNGs; this helper keeps the
/// [`LifeDistribution`] trait object-safe.
pub(crate) fn rng_f64(rng: &mut dyn Rng) -> f64 {
    // 53 random mantissa bits, the standard conversion used by `rand`.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rng_f64_is_in_unit_interval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng_f64(&mut rng);
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn LifeDistribution> = Box::new(Weibull3::new(0.0, 100.0, 1.5).unwrap());
        assert!(d.cdf(100.0) > 0.5);
    }

    #[test]
    fn default_sf_and_hazard_are_consistent() {
        let d = Weibull3::new(0.0, 50.0, 2.0).unwrap();
        for &t in &[1.0, 10.0, 50.0, 120.0] {
            assert!((d.sf(t) - (1.0 - d.cdf(t))).abs() < 1e-12);
            let h = d.hazard(t);
            assert!((h - d.pdf(t) / d.sf(t)).abs() < 1e-9 * h.max(1.0));
        }
    }

    #[test]
    fn conditional_sample_exceeds_zero_and_respects_support() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let extra = d.sample_conditional(10.0, &mut rng);
            assert!(extra >= 0.0);
        }
    }
}
