use crate::special::{inv_std_normal, std_normal_cdf};
use crate::{rng_f64, DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Lognormal lifetime distribution, with an optional location shift.
///
/// `ln(T − γ) ~ N(μ, σ²)`. The lognormal is the other standard
/// repair-time family in reliability practice; the restore-sensitivity
/// ablation (`exp_restore_sensitivity`) swaps it against the paper's
/// three-parameter Weibull to show which *features* of the restore
/// distribution the DDF count actually depends on (the minimum time
/// and the mean — not the family).
///
/// # Example
///
/// ```
/// use raidsim_dists::{LifeDistribution, Lognormal};
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // A restore distribution with a 6-hour floor and a long tail.
/// let d = Lognormal::new(6.0, 2.0, 0.6)?;
/// assert_eq!(d.cdf(5.9), 0.0);
/// assert!(d.mean() > 6.0 + 2.0f64.exp() * 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lognormal {
    gamma: f64,
    mu: f64,
    sigma: f64,
}

impl Lognormal {
    /// Creates a shifted lognormal with location `gamma`, log-mean
    /// `mu` and log-standard-deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `gamma` is negative
    /// or non-finite, `mu` non-finite, or `sigma` not positive and
    /// finite.
    pub fn new(gamma: f64, mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "gamma",
                value: gamma,
                constraint: "must be finite and >= 0",
            });
        }
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { gamma, mu, sigma })
    }

    /// Creates a shifted lognormal with the given location, **mean**
    /// (beyond the location) and coefficient of variation `cv`
    /// (sd / mean of the unshifted part) — the parametrization the
    /// restore ablation uses to mean-match against a Weibull.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] for non-positive mean
    /// or cv.
    pub fn from_mean_cv(gamma: f64, mean: f64, cv: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !cv.is_finite() || cv <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "cv",
                value: cv,
                constraint: "must be finite and > 0",
            });
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(gamma, mu, sigma2.sqrt())
    }

    /// Location parameter γ, hours.
    pub fn location(&self) -> f64 {
        self.gamma
    }

    /// Log-mean μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-standard-deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl LifeDistribution for Lognormal {
    fn cdf(&self, t: f64) -> f64 {
        if t <= self.gamma {
            return 0.0;
        }
        std_normal_cdf(((t - self.gamma).ln() - self.mu) / self.sigma)
    }

    fn pdf(&self, t: f64) -> f64 {
        if t <= self.gamma {
            return 0.0;
        }
        let x = t - self.gamma;
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.gamma;
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        self.gamma + (self.mu + self.sigma * inv_std_normal(p)).exp()
    }

    fn mean(&self) -> f64 {
        self.gamma + (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u = rng_f64(rng);
        self.quantile(u)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Lognormal {
            gamma: self.gamma,
            mu: self.mu,
            sigma: self.sigma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Lognormal::new(-1.0, 0.0, 1.0).is_err());
        assert!(Lognormal::new(0.0, f64::NAN, 1.0).is_err());
        assert!(Lognormal::new(0.0, 0.0, 0.0).is_err());
        assert!(Lognormal::from_mean_cv(0.0, -1.0, 0.5).is_err());
        assert!(Lognormal::from_mean_cv(0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn median_is_exp_mu() {
        let d = Lognormal::new(0.0, 2.0, 0.7).unwrap();
        // Tolerance set by the inverse-normal approximation (~1e-9
        // in z, amplified by the derivative of exp).
        assert!((d.quantile(0.5) - 2.0f64.exp()).abs() < 1e-6);
    }

    #[test]
    fn mean_matches_closed_form_and_monte_carlo() {
        let d = Lognormal::new(6.0, 1.5, 0.5).unwrap();
        let analytic = 6.0 + (1.5f64 + 0.125).exp();
        assert!((d.mean() - analytic).abs() < 1e-9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 200_000;
        let mc: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mc - analytic).abs() < 0.05, "mc = {mc}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Lognormal::new(6.0, 2.0, 0.8).unwrap();
        // Round-trip accuracy is limited by the erf approximation in
        // the CDF (~1.5e-7), not by the quantile.
        for &p in &[1e-4, 0.1, 0.5, 0.9, 0.9999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 5e-7, "p = {p}");
        }
    }

    #[test]
    fn location_shifts_support() {
        let d = Lognormal::new(6.0, 1.0, 0.5).unwrap();
        assert_eq!(d.cdf(6.0), 0.0);
        assert_eq!(d.pdf(3.0), 0.0);
        assert_eq!(d.quantile(0.0), 6.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 6.0);
        }
    }

    #[test]
    fn from_mean_cv_round_trips() {
        let d = Lognormal::from_mean_cv(6.0, 10.0, 0.5).unwrap();
        assert!((d.mean() - 16.0).abs() < 1e-9);
        // Variance of the unshifted part: (cv * mean)^2 = 25.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng) - 6.0).collect();
        let m = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 25.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn hazard_is_non_monotonic() {
        // The lognormal hazard rises then falls — unlike any Weibull.
        let d = Lognormal::new(0.0, 2.0, 0.9).unwrap();
        let hs: Vec<f64> = [1.0, 5.0, 20.0, 200.0, 2_000.0]
            .iter()
            .map(|&t| d.hazard(t))
            .collect();
        let max = hs.iter().copied().fold(0.0f64, f64::max);
        assert!(hs[0] < max && *hs.last().unwrap() < max, "hs = {hs:?}");
    }
}
