//! Empirical estimators: plotting positions, ECDF and Kaplan–Meier.
//!
//! Figures 1 and 2 of the paper are Weibull probability plots of field
//! data. This module provides the machinery to turn a (possibly
//! right-censored) set of lifetimes into plotting positions and
//! nonparametric CDF estimates.

use serde::{Deserialize, Serialize};

/// One observation in a life-data set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Time at which the unit failed or was censored, in hours.
    pub time: f64,
    /// `true` if the unit failed at `time`; `false` if it was removed
    /// from observation still working (a *suspension* in reliability
    /// jargon — e.g. the drive was still running when the study ended).
    pub failed: bool,
}

impl Observation {
    /// A failure at `time`.
    pub fn failure(time: f64) -> Self {
        Self { time, failed: true }
    }

    /// A right-censored (suspended) observation at `time`.
    pub fn censored(time: f64) -> Self {
        Self {
            time,
            failed: false,
        }
    }
}

/// A point on a probability plot: a failure time with its estimated
/// cumulative probability of failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlotPoint {
    /// Failure time, in hours.
    pub time: f64,
    /// Estimated `F(time)` — the plotting position.
    pub prob: f64,
}

impl PlotPoint {
    /// Weibull-paper x-coordinate: `ln t`.
    pub fn x(&self) -> f64 {
        self.time.ln()
    }

    /// Weibull-paper y-coordinate: `ln(−ln(1 − F))`.
    ///
    /// On these axes a two-parameter Weibull is a straight line with
    /// slope `β` — exactly the "straight line indicates a good fit"
    /// criterion of paper Figure 1.
    ///
    /// # Panics
    ///
    /// Panics when `prob` lies outside the open interval `(0, 1)` —
    /// the transform is `−∞` at 0 and `+∞`/NaN at or beyond 1, values
    /// that would silently poison a downstream least-squares fit. Use
    /// [`PlotPoint::try_y`] to handle endpoint probabilities as a
    /// typed error instead. Plotting positions produced by
    /// [`median_ranks`] and [`johnson_ranks`] are always interior, so
    /// points from those constructors never panic here.
    pub fn y(&self) -> f64 {
        match self.try_y() {
            Ok(v) => v,
            Err(e) => panic!("PlotPoint::y is undefined at this plotting position: {e}"),
        }
    }

    /// [`PlotPoint::y`] with the domain endpoints reported as a typed
    /// error: `prob` must lie strictly inside `(0, 1)` (NaN is also
    /// rejected) for `ln(−ln(1 − F))` to be finite.
    ///
    /// # Errors
    ///
    /// [`crate::DistError::InvalidParameter`] when `prob ≤ 0`,
    /// `prob ≥ 1`, or `prob` is NaN.
    pub fn try_y(&self) -> Result<f64, crate::DistError> {
        if !(self.prob > 0.0 && self.prob < 1.0) {
            return Err(crate::DistError::InvalidParameter {
                name: "prob",
                value: self.prob,
                constraint: "must lie strictly inside (0, 1) for the Weibull plot ordinate",
            });
        }
        Ok((-(1.0 - self.prob).ln()).ln())
    }
}

/// Median-rank plotting positions via Benard's approximation for a
/// *complete* (uncensored) sample: `F̂_i = (i − 0.3) / (n + 0.4)`.
///
/// Input order does not matter; output is sorted ascending by time.
///
/// # Examples
///
/// ```
/// use raidsim_dists::empirical::median_ranks;
///
/// let pts = median_ranks(&[150.0, 50.0, 100.0]);
/// assert_eq!(pts[0].time, 50.0);
/// assert!((pts[0].prob - (1.0 - 0.3) / 3.4).abs() < 1e-12);
/// ```
pub fn median_ranks(failure_times: &[f64]) -> Vec<PlotPoint> {
    let mut times = failure_times.to_vec();
    times.sort_by(f64::total_cmp);
    let n = times.len() as f64;
    times
        .iter()
        .enumerate()
        .map(|(idx, &t)| PlotPoint {
            time: t,
            prob: ((idx + 1) as f64 - 0.3) / (n + 0.4),
        })
        .collect()
}

/// Median-rank plotting positions for a right-censored sample using the
/// Johnson rank-adjustment method.
///
/// Suspensions do not get plotting positions but shift the *adjusted
/// ranks* of later failures. This is the standard method behind
/// commercial Weibull packages and reproduces the suspended-data plots in
/// the paper's Figure 2 (populations with far more suspensions than
/// failures, e.g. vintage 1: F=198, S=10,433).
///
/// Returns one point per **failure**, sorted by time.
pub fn johnson_ranks(data: &[Observation]) -> Vec<PlotPoint> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            // Failures sort before suspensions at identical times
            // (standard convention).
            .then(b.failed.cmp(&a.failed))
    });
    let n = sorted.len() as f64;
    let mut points = Vec::new();
    let mut prev_rank = 0.0;
    for (idx, obs) in sorted.iter().enumerate() {
        if !obs.failed {
            continue;
        }
        // Rank increment redistributes the "mass" of the remaining
        // unfailed units (including suspensions) over later positions.
        let remaining = n - idx as f64; // items at or after this position
        let increment = (n + 1.0 - prev_rank) / (remaining + 1.0);
        let rank = prev_rank + increment;
        prev_rank = rank;
        points.push(PlotPoint {
            time: obs.time,
            prob: (rank - 0.3) / (n + 0.4),
        });
    }
    points
}

/// Empirical CDF of a complete sample: step function `F̂(t) = #{xᵢ ≤ t}/n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF. `samples` may be in any order.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "ECDF requires at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// `F̂(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        // partition_point returns the count of elements <= t.
        let count = self.sorted.partition_point(|&x| x <= t);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Kolmogorov–Smirnov distance to a reference CDF.
    pub fn ks_distance<F: Fn(f64) -> f64>(&self, cdf: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            let hi = (i + 1) as f64 / n;
            let lo = i as f64 / n;
            d = d.max((hi - f).abs()).max((f - lo).abs());
        }
        d
    }
}

/// Kaplan–Meier (product-limit) survival estimate for right-censored data.
///
/// Returns `(time, survival)` steps at each distinct failure time, in
/// ascending order. The survival value is the estimate *just after* that
/// time.
pub fn kaplan_meier(data: &[Observation]) -> Vec<(f64, f64)> {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time).then(b.failed.cmp(&a.failed)));
    let mut at_risk = sorted.len() as f64;
    let mut survival = 1.0;
    let mut steps: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let t = sorted[i].time;
        // Count failures and total events at this exact time.
        let mut deaths = 0.0;
        let mut events = 0.0;
        while i < sorted.len() && sorted[i].time == t {
            if sorted[i].failed {
                deaths += 1.0;
            }
            events += 1.0;
            i += 1;
        }
        if deaths > 0.0 {
            survival *= 1.0 - deaths / at_risk;
            steps.push((t, survival));
        }
        at_risk -= events;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_ranks_match_benard() {
        let pts = median_ranks(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        // i = 3, n = 5: (3 - 0.3) / 5.4 = 0.5
        assert!((pts[2].prob - 0.5).abs() < 1e-12);
        assert_eq!(pts.len(), 5);
        assert!(pts.windows(2).all(|w| w[0].prob < w[1].prob));
    }

    #[test]
    fn johnson_without_suspensions_equals_median_ranks() {
        let times = [5.0, 17.0, 29.0, 41.0];
        let obs: Vec<_> = times.iter().map(|&t| Observation::failure(t)).collect();
        let a = johnson_ranks(&obs);
        let b = median_ranks(&times);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.prob - y.prob).abs() < 1e-12);
            assert_eq!(x.time, y.time);
        }
    }

    #[test]
    fn suspensions_raise_later_failure_probabilities() {
        // A suspension before the second failure must push the second
        // failure's plotting position higher than the complete-sample
        // equivalent with the suspension treated as absent.
        let with_susp = johnson_ranks(&[
            Observation::failure(10.0),
            Observation::censored(15.0),
            Observation::failure(20.0),
        ]);
        let without = johnson_ranks(&[Observation::failure(10.0), Observation::failure(20.0)]);
        // Positions come from different n, so compare adjusted-rank
        // spacing: with a suspension between, the second failure's rank
        // increment grows.
        assert_eq!(with_susp.len(), 2);
        assert!(with_susp[1].prob > with_susp[0].prob);
        assert!(without[1].prob > with_susp[1].prob * 0.5); // sanity
    }

    #[test]
    fn johnson_handles_heavy_censoring_like_fig2() {
        // 198 failures among 10,631 units (paper Fig 2, vintage 1).
        let mut obs = Vec::new();
        for i in 0..198 {
            obs.push(Observation::failure(10.0 + i as f64 * 10.0));
        }
        for _ in 0..10_433 {
            obs.push(Observation::censored(6_000.0));
        }
        let pts = johnson_ranks(&obs);
        assert_eq!(pts.len(), 198);
        // All plotting positions tiny: the population mostly survived.
        assert!(pts.last().unwrap().prob < 0.05);
        assert!(pts.windows(2).all(|w| w[0].prob < w[1].prob));
    }

    #[test]
    fn ecdf_basic_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn ecdf_rejects_empty() {
        Ecdf::new(&[]);
    }

    #[test]
    fn ks_distance_of_exact_cdf_is_small() {
        use crate::{LifeDistribution, Weibull3};
        use rand::SeedableRng;
        let d = Weibull3::new(0.0, 100.0, 1.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let e = Ecdf::new(&samples);
        let ks = e.ks_distance(|t| d.cdf(t));
        assert!(ks < 1.63 / (20_000.0f64).sqrt(), "ks = {ks}");
    }

    #[test]
    fn kaplan_meier_complete_sample_matches_ecdf() {
        let obs: Vec<_> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&t| Observation::failure(t))
            .collect();
        let km = kaplan_meier(&obs);
        assert_eq!(km.len(), 4);
        assert!((km[0].1 - 0.75).abs() < 1e-12);
        assert!((km[3].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn kaplan_meier_with_censoring() {
        // Classic worked example: failures at 6, 10; censored at 8.
        let obs = vec![
            Observation::failure(6.0),
            Observation::censored(8.0),
            Observation::failure(10.0),
        ];
        let km = kaplan_meier(&obs);
        assert_eq!(km.len(), 2);
        assert!((km[0].1 - 2.0 / 3.0).abs() < 1e-12);
        // After censoring, 1 at risk: S = 2/3 * (1 - 1/1) = 0.
        assert!((km[1].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn plot_point_weibull_axes() {
        let p = PlotPoint {
            time: std::f64::consts::E,
            prob: 1.0 - (-1.0f64).exp(), // F at characteristic life
        };
        assert!((p.x() - 1.0).abs() < 1e-12);
        assert!(p.y().abs() < 1e-12); // ln(-ln(1/e)) = ln(1) = 0
    }

    #[test]
    fn plot_point_endpoints_are_typed_errors_not_infinities() {
        // Regression: these used to come back as -inf / +inf / NaN and
        // poison downstream least-squares fits.
        for prob in [0.0, -0.1, 1.0, 1.5, f64::NAN] {
            let p = PlotPoint { time: 100.0, prob };
            let err = p.try_y().unwrap_err();
            match err {
                crate::DistError::InvalidParameter { name, .. } => assert_eq!(name, "prob"),
                other => panic!("expected InvalidParameter, got {other:?}"),
            }
        }
        // Interior probabilities are untouched by the guard.
        let p = PlotPoint {
            time: 100.0,
            prob: 0.25,
        };
        assert_eq!(
            p.try_y().unwrap().to_bits(),
            (-(1.0f64 - 0.25).ln()).ln().to_bits()
        );
        assert!(p.try_y().unwrap().is_finite());
    }

    #[test]
    #[should_panic(expected = "PlotPoint::y is undefined")]
    fn plot_point_y_panics_at_certain_failure() {
        let p = PlotPoint {
            time: 100.0,
            prob: 1.0,
        };
        let _ = p.y();
    }

    #[test]
    fn plotting_position_constructors_stay_interior() {
        // Benard / Johnson positions never reach the endpoints, so the
        // guarded y() is always defined on constructor output.
        let pts = median_ranks(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(pts.iter().all(|p| p.try_y().is_ok()));
        let obs: Vec<_> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    Observation::censored(10.0 + i as f64)
                } else {
                    Observation::failure(10.0 + i as f64)
                }
            })
            .collect();
        assert!(johnson_ranks(&obs).iter().all(|p| p.try_y().is_ok()));
    }
}
