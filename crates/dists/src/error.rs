use std::fmt;

/// Errors returned when constructing or fitting distributions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"eta"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be finite and > 0"`.
        constraint: &'static str,
    },
    /// Mixture weights did not form a valid probability vector.
    InvalidWeights {
        /// Sum of the provided weights.
        sum: f64,
    },
    /// A composite distribution was constructed with no components.
    Empty,
    /// A fitting routine was given insufficient or degenerate data.
    InsufficientData {
        /// Number of exact (failure) observations provided.
        failures: usize,
        /// Minimum number required by the estimator.
        required: usize,
    },
    /// An iterative estimator failed to converge.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            DistError::InvalidWeights { sum } => {
                write!(
                    f,
                    "mixture weights must be positive and sum to 1, got sum {sum}"
                )
            }
            DistError::Empty => write!(f, "composite distribution has no components"),
            DistError::InsufficientData { failures, required } => write!(
                f,
                "insufficient data: {failures} failure observations, need at least {required}"
            ),
            DistError::NoConvergence { iterations } => {
                write!(
                    f,
                    "estimator did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DistError::InvalidParameter {
            name: "beta",
            value: -1.0,
            constraint: "must be finite and > 0",
        };
        let s = e.to_string();
        assert!(s.contains("beta"));
        assert!(s.contains("-1"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DistError>();
    }
}
