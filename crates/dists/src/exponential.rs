use crate::{rng_f64, DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential lifetime distribution — the constant-rate special case.
///
/// This is the distribution the MTTDL method implicitly assumes for both
/// failures and repairs (paper Section 4.1). It is kept as a separate type
/// from [`crate::Weibull3`] (which it equals when `β = 1, γ = 0`) because
/// the paper's entire argument hinges on the difference, and experiments
/// switch between the two explicitly (Figure 6 variants `c-c`, `f(t)-c`,
/// `c-r(t)`).
///
/// # Example
///
/// ```
/// use raidsim_dists::{Exponential, LifeDistribution};
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // MTBF = 461,386 h, the paper's worked example (eq. 3).
/// let d = Exponential::from_mean(461_386.0)?;
/// assert!((d.rate() - 1.0 / 461_386.0).abs() < 1e-18);
/// // Memoryless: hazard never changes.
/// assert_eq!(d.hazard(1.0), d.hazard(1_000_000.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given hazard `rate`
    /// (per hour).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `rate` is non-finite or
    /// non-positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution with the given `mean` (MTTF or
    /// MTTR, in hours).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `mean` is non-finite or
    /// non-positive.
    pub fn from_mean(mean: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(1.0 / mean)
    }

    /// The constant hazard rate `λ`, per hour.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl LifeDistribution for Exponential {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(-self.rate * t).exp_m1()
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * t).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn sf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-self.rate * t).exp()
        }
    }

    fn hazard(&self, _t: f64) -> f64 {
        self.rate
    }

    fn cum_hazard(&self, t: f64) -> f64 {
        self.rate * t.max(0.0)
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u = rng_f64(rng);
        // -ln(1-u)/rate with u in [0,1); 1-u is in (0,1] so ln is finite.
        -(1.0 - u).ln() / self.rate
    }

    fn sample_conditional(&self, _t0: f64, rng: &mut dyn Rng) -> f64 {
        // Memorylessness: the residual life is the same exponential.
        self.sample(rng)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Exponential { rate: self.rate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Weibull3;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn agrees_with_weibull_beta_one() {
        let e = Exponential::from_mean(9259.0).unwrap();
        let w = Weibull3::new(0.0, 9259.0, 1.0).unwrap();
        for &t in &[1.0, 100.0, 9259.0, 50_000.0] {
            assert!((e.cdf(t) - w.cdf(t)).abs() < 1e-12, "t = {t}");
            assert!((e.pdf(t) - w.pdf(t)).abs() < 1e-15, "t = {t}");
            assert!((e.hazard(t) - w.hazard(t)).abs() < 1e-15, "t = {t}");
        }
    }

    #[test]
    fn memoryless_conditional_sampling() {
        let e = Exponential::from_mean(100.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| e.sample_conditional(500.0, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "conditional mean = {mean}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let e = Exponential::new(0.25).unwrap();
        for &p in &[0.01, 0.5, 0.99] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn mttdl_example_rate() {
        // The worked example in eq. 3 uses MTBF = 461,386 h.
        let e = Exponential::from_mean(461_386.0).unwrap();
        assert!((e.mean() - 461_386.0).abs() < 1e-6);
    }
}
