use crate::special::{weibull_mean, weibull_variance};
use crate::{rng_f64, DistError, LifeDistribution, SampleKernel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Three-parameter Weibull distribution.
///
/// The probability density used throughout the paper (Section 6):
///
/// ```text
/// f(t) = (β/η) · ((t−γ)/η)^(β−1) · exp(−((t−γ)/η)^β)     for t ≥ γ
/// ```
///
/// * `γ` (`gamma`) — **location**: the minimum possible value. The paper
///   uses it to encode the physical minimum restore time (capacity divided
///   by bandwidth, Section 6.2) and the minimum scrub pass time
///   (Section 6.4).
/// * `η` (`eta`) — **characteristic life** (scale): the time by which
///   63.2% of the population has failed, measured from `γ`.
/// * `β` (`beta`) — **shape**: `β < 1` gives a decreasing hazard (infant
///   mortality), `β = 1` a constant hazard (the homogeneous-Poisson
///   special case the paper argues against), `β > 1` an increasing hazard
///   (wear-out).
///
/// # Example
///
/// ```
/// use raidsim_dists::{LifeDistribution, Weibull3};
///
/// # fn main() -> Result<(), raidsim_dists::DistError> {
/// // Paper Section 6.2: restore time with a 6-hour physical minimum,
/// // characteristic life 12 h, right-skewed shape beta = 2.
/// let ttr = Weibull3::new(6.0, 12.0, 2.0)?;
/// assert_eq!(ttr.cdf(5.9), 0.0);       // nothing restores before 6 h
/// assert!(ttr.cdf(30.0) > 0.95);       // almost everything within 30 h
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull3 {
    gamma: f64,
    eta: f64,
    beta: f64,
}

impl Weibull3 {
    /// Creates a three-parameter Weibull with location `gamma`, scale
    /// `eta` and shape `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `gamma` is negative or
    /// non-finite, or if `eta`/`beta` are non-finite or non-positive.
    pub fn new(gamma: f64, eta: f64, beta: f64) -> Result<Self, DistError> {
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "gamma",
                value: gamma,
                constraint: "must be finite and >= 0",
            });
        }
        if !eta.is_finite() || eta <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "eta",
                value: eta,
                constraint: "must be finite and > 0",
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { gamma, eta, beta })
    }

    /// Creates a two-parameter Weibull (`γ = 0`).
    ///
    /// # Errors
    ///
    /// Same constraints as [`Weibull3::new`].
    pub fn two_param(eta: f64, beta: f64) -> Result<Self, DistError> {
        Self::new(0.0, eta, beta)
    }

    /// Location parameter `γ` (minimum value), in hours.
    pub fn location(&self) -> f64 {
        self.gamma
    }

    /// Characteristic life `η`, in hours.
    pub fn scale(&self) -> f64 {
        self.eta
    }

    /// Shape parameter `β` (dimensionless).
    pub fn shape(&self) -> f64 {
        self.beta
    }

    /// Creates a Weibull with the given shape whose **mean** equals
    /// `mean` (location fixed at 0).
    ///
    /// Used by the shape-sweep experiment (paper Figure 10 holds `η`
    /// fixed; this constructor instead holds the MTTF fixed, an
    /// alternative the ablation benches compare).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `mean` or `beta` are
    /// non-finite or non-positive.
    pub fn from_mean(mean: f64, beta: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(DistError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and > 0",
            });
        }
        let eta = mean / crate::special::gamma(1.0 + 1.0 / beta);
        Self::new(0.0, eta, beta)
    }

    /// Standardized variate `z = (t − γ)/η`, clamped to `≥ 0`.
    #[inline]
    fn z(&self, t: f64) -> f64 {
        ((t - self.gamma) / self.eta).max(0.0)
    }

    /// Variance, in hours².
    pub fn variance(&self) -> f64 {
        weibull_variance(self.eta, self.beta)
    }

    /// Median (50th percentile), in hours.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The `B(p)` life: time by which a fraction `p` of the population has
    /// failed. `b_life(0.1)` is the common "B10" life.
    pub fn b_life(&self, p: f64) -> f64 {
        self.quantile(p)
    }
}

impl LifeDistribution for Weibull3 {
    fn cdf(&self, t: f64) -> f64 {
        if t <= self.gamma {
            return 0.0;
        }
        let z = self.z(t);
        -(-z.powf(self.beta)).exp_m1()
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.gamma {
            return 0.0;
        }
        let z = self.z(t);
        if z == 0.0 {
            // At the support boundary the density is 0 for beta > 1,
            // 1/eta for beta == 1, and diverges for beta < 1.
            return match self.beta.total_cmp(&1.0) {
                std::cmp::Ordering::Greater => 0.0,
                std::cmp::Ordering::Equal => 1.0 / self.eta,
                std::cmp::Ordering::Less => f64::INFINITY,
            };
        }
        (self.beta / self.eta) * z.powf(self.beta - 1.0) * (-z.powf(self.beta)).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.gamma;
        }
        assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
        // ln(1 - p) via ln_1p(-p): the naive `(1.0 - p).ln()` rounds
        // `1 - p` to 1.0 for p below ~1e-16 (the quantile collapses to
        // gamma, so B-lives of ultra-reliable tails read as the location
        // parameter) and loses relative precision for all small p.
        self.gamma + self.eta * (-(-p).ln_1p()).powf(1.0 / self.beta)
    }

    fn mean(&self) -> f64 {
        self.gamma + weibull_mean(self.eta, self.beta)
    }

    fn sf(&self, t: f64) -> f64 {
        if t <= self.gamma {
            return 1.0;
        }
        (-self.z(t).powf(self.beta)).exp()
    }

    fn hazard(&self, t: f64) -> f64 {
        if t < self.gamma {
            return 0.0;
        }
        let z = self.z(t);
        if z == 0.0 {
            return match self.beta.total_cmp(&1.0) {
                std::cmp::Ordering::Greater => 0.0,
                std::cmp::Ordering::Equal => 1.0 / self.eta,
                std::cmp::Ordering::Less => f64::INFINITY,
            };
        }
        (self.beta / self.eta) * z.powf(self.beta - 1.0)
    }

    fn cum_hazard(&self, t: f64) -> f64 {
        self.z(t).powf(self.beta)
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Inverse transform; cheaper and exactly consistent with
        // `quantile`, which the KS property test relies on.
        let u = rng_f64(rng);
        self.quantile(u)
    }

    fn lower_kernel(&self) -> Option<SampleKernel> {
        Some(SampleKernel::Weibull3 {
            gamma: self.gamma,
            eta: self.eta,
            beta: self.beta,
            inv_beta: 1.0 / self.beta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> Weibull3 {
        Weibull3::new(0.0, 461_386.0, 1.12).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull3::new(-1.0, 1.0, 1.0).is_err());
        assert!(Weibull3::new(0.0, 0.0, 1.0).is_err());
        assert!(Weibull3::new(0.0, 1.0, 0.0).is_err());
        assert!(Weibull3::new(0.0, f64::NAN, 1.0).is_err());
        assert!(Weibull3::new(0.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn cdf_at_characteristic_life_is_63_2_percent() {
        // By definition, F(gamma + eta) = 1 - 1/e for any beta.
        for beta in [0.5, 1.0, 1.12, 2.0, 3.0] {
            let d = Weibull3::new(10.0, 100.0, beta).unwrap();
            let f = d.cdf(110.0);
            assert!(
                (f - (1.0 - (-1.0f64).exp())).abs() < 1e-12,
                "beta = {beta}, F = {f}"
            );
        }
    }

    #[test]
    fn cdf_is_zero_before_location() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(6.0), 0.0);
        assert!(d.cdf(6.0001) > 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        for &p in &[1e-9, 0.01, 0.25, 0.5, 0.9, 0.999] {
            let t = d.quantile(p);
            assert!((d.cdf(t) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn quantile_saturates_at_location_for_p_zero() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        assert_eq!(d.quantile(0.0), 6.0);
        assert_eq!(d.quantile(-0.5), 6.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in [0, 1)")]
    fn quantile_rejects_p_one() {
        base().quantile(1.0);
    }

    #[test]
    fn quantile_resolves_deep_lower_tail() {
        // `(1.0 - p).ln()` rounds to 0 for p below ~1e-16, collapsing
        // the quantile to gamma; ln_1p keeps full relative precision.
        // (Bounded below by representability: the offset eta·p^(1/beta)
        // must exceed one ULP of gamma to survive the final addition.)
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        for &p in &[1e-18, 1e-30] {
            let t = d.quantile(p);
            assert!(t > 6.0, "quantile({p}) = {t} collapsed to gamma");
            // For tiny p, -ln(1-p) = p + O(p²), so the closed form
            // gamma + eta·p^(1/beta) agrees to within the rounding of
            // the offset against gamma.
            let expect = 6.0 + 12.0 * p.powf(1.0 / 2.0);
            assert!(
                (t - expect).abs() <= 1e-6 * (expect - 6.0),
                "p = {p}: got {t}, expected {expect}"
            );
        }
        // With gamma = 0 there is no absolute floor at all: the deep
        // tail stays resolvable arbitrarily far down.
        let d0 = Weibull3::two_param(12.0, 2.0).unwrap();
        for &p in &[1e-18, 1e-100, 1e-300] {
            let t = d0.quantile(p);
            let expect = 12.0 * p.powf(1.0 / 2.0);
            assert!(t > 0.0, "quantile({p}) = {t} collapsed to zero");
            assert!(
                (t - expect).abs() <= 1e-12 * expect,
                "p = {p}: got {t}, expected {expect}"
            );
        }
    }

    #[test]
    fn quantile_cdf_round_trip_at_both_tails() {
        // gamma = 0 so the lower tail keeps full relative precision
        // (cdf uses exp_m1, quantile uses ln_1p — both tails resolve).
        let d = Weibull3::two_param(12.0, 2.0).unwrap();
        for &p in &[1e-18, 1e-12, 1e-6, 0.5, 1.0 - 1e-6, 1.0 - 1e-12] {
            let t = d.quantile(p);
            let back = d.cdf(t);
            assert!(
                (back - p).abs() <= 1e-12 * p,
                "p = {p}: cdf(quantile(p)) = {back}"
            );
        }
        // Through a nonzero location the round trip is limited by the
        // rounding of t against gamma, not by the tail math.
        let d3 = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        for &p in &[1e-12, 1e-6, 0.5, 1.0 - 1e-6] {
            let t = d3.quantile(p);
            let back = d3.cdf(t);
            assert!(
                (back - p).abs() <= 1e-6 * p,
                "p = {p}: cdf(quantile(p)) = {back}"
            );
        }
    }

    #[test]
    fn exponential_special_case_has_constant_hazard() {
        let d = Weibull3::new(0.0, 9259.0, 1.0).unwrap();
        let h0 = d.hazard(1.0);
        for &t in &[10.0, 100.0, 10_000.0, 80_000.0] {
            assert!((d.hazard(t) - h0).abs() < 1e-15);
        }
        assert!((h0 - 1.0 / 9259.0).abs() < 1e-12);
    }

    #[test]
    fn increasing_shape_gives_increasing_hazard() {
        let d = base(); // beta = 1.12 > 1
        assert!(d.hazard(1_000.0) < d.hazard(10_000.0));
        assert!(d.hazard(10_000.0) < d.hazard(100_000.0));
    }

    #[test]
    fn decreasing_shape_gives_decreasing_hazard() {
        let d = Weibull3::new(0.0, 461_386.0, 0.8).unwrap();
        assert!(d.hazard(1_000.0) > d.hazard(10_000.0));
    }

    #[test]
    fn mean_matches_monte_carlo() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mc_mean = sum / n as f64;
        assert!(
            (mc_mean - d.mean()).abs() < 0.05,
            "mc = {mc_mean}, analytic = {}",
            d.mean()
        );
    }

    #[test]
    fn paper_base_case_mean_is_near_mttf() {
        // eta = 461,386, beta = 1.12 -> mean = eta * gamma(1 + 1/1.12)
        let m = base().mean();
        assert!(m > 430_000.0 && m < 461_386.0, "mean = {m}");
    }

    #[test]
    fn samples_respect_location_minimum() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 6.0);
        }
    }

    #[test]
    fn cum_hazard_matches_neg_log_sf() {
        let d = Weibull3::new(6.0, 12.0, 3.0).unwrap();
        for &t in &[7.0, 10.0, 20.0, 40.0] {
            assert!((d.cum_hazard(t) - (-d.sf(t).ln())).abs() < 1e-9);
        }
    }

    #[test]
    fn from_mean_round_trips() {
        let d = Weibull3::from_mean(1000.0, 1.4).unwrap();
        assert!((d.mean() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn b10_life_is_below_median() {
        let d = base();
        assert!(d.b_life(0.1) < d.median());
        assert!((d.cdf(d.b_life(0.1)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn pdf_boundary_cases_by_shape() {
        assert_eq!(Weibull3::new(0.0, 10.0, 2.0).unwrap().pdf(0.0), 0.0);
        assert!((Weibull3::new(0.0, 10.0, 1.0).unwrap().pdf(0.0) - 0.1).abs() < 1e-12);
        assert!(Weibull3::new(0.0, 10.0, 0.5)
            .unwrap()
            .pdf(0.0)
            .is_infinite());
    }

    #[test]
    fn serde_round_trip_preserves_parameters() {
        let d = Weibull3::new(6.0, 12.0, 2.0).unwrap();
        let json = serde_json_like(&d);
        assert!(json.contains("6") && json.contains("12") && json.contains("2"));
    }

    // serde_json is not a dependency; just exercise Serialize via Debug
    // formatting of the serde data model through a tiny shim.
    fn serde_json_like(d: &Weibull3) -> String {
        format!("{d:?}")
    }
}
