//! Monomorphic sampling kernels: the simulation hot path's view of a
//! lifetime distribution.
//!
//! The engines store model transitions as `Arc<dyn LifeDistribution>`,
//! which is the right shape for configuration (any family, any nesting)
//! but the wrong shape for the inner Monte Carlo loop: every draw pays
//! a virtual call, and the closed-form quantile paths recompute
//! invariants such as `1/β` on each evaluation. A [`SampleKernel`] is
//! the same distribution *lowered once per run* into a flat enum the
//! optimizer can inline and the caller can keep in a per-worker
//! session, with those invariants precomputed.
//!
//! # Bit-identity contract
//!
//! Lowering must be **invisible in the results**: for any seeded RNG,
//! [`SampleKernel::sample`] and [`SampleKernel::sample_conditional`]
//! must consume exactly the same RNG draws and produce bit-identical
//! `f64`s to the `dyn LifeDistribution` methods they replace. That
//! restricts the allowed transformations to:
//!
//! * hoisting pure recomputed subexpressions (`1/β` feeds the same
//!   `powf` it always did — division is deterministic, so the hoisted
//!   value is the bit pattern the `dyn` path computed inline), and
//! * inlining the exact float-op sequence of the concrete overrides
//!   (including each family's choice of `ln_1p` vs `ln`, and the
//!   trait-default conditional inversion where a family does not
//!   override it).
//!
//! Algebraic rewrites that change the op sequence — e.g. `sqrt` in
//! place of `powf(0.5)` for β = 2 — are **excluded**: they are faster
//! but not bit-equal. The `kernel_equivalence` property suite enforces
//! the contract for every variant over random parameters and seeds.
//!
//! # Lowering table
//!
//! | `dyn` implementation | kernel variant | notes |
//! |---|---|---|
//! | [`crate::Weibull3`] | [`SampleKernel::Weibull3`] | `1/β` precomputed; conditional inlines the trait default over the Weibull `sf`/`cdf`/`quantile` overrides |
//! | [`crate::Exponential`] | [`SampleKernel::Exponential`] | conditional is memoryless, matching the override |
//! | [`crate::Lognormal`] | [`SampleKernel::Lognormal`] | conditional inlines the trait default (`sf` is the trait default `1 − cdf`) |
//! | [`crate::Degenerate`] | [`SampleKernel::Degenerate`] | consumes **no** RNG draws, matching both overrides |
//! | [`crate::Mixture`] | [`SampleKernel::Mixture`] | children lowered recursively; conditional delegates to the source object (numeric CDF inversion) |
//! | [`crate::CompetingRisks`] | [`SampleKernel::Competing`] | children lowered recursively; conditional delegates to the source object |
//! | anything else | [`SampleKernel::Boxed`] | full fallback to the `dyn` methods (e.g. future empirical resampling distributions — [`crate::empirical`] currently defines estimators, not `LifeDistribution`s) |

use crate::{rng_f64, DistError, LifeDistribution};
use rand::Rng;
use std::sync::Arc;

/// An exponential tilt of the unit-uniform variate feeding a quantile
/// kernel — the measure change behind importance sampling.
///
/// Instead of a plain uniform `u ∈ [0, 1)`, a tilted draw samples
/// `v ∈ [0, 1)` from the density `g(v) = θ·e^{−θv} / (1 − e^{−θ})` and
/// feeds `v` to the *same* quantile evaluation. For `θ > 0` the mass
/// shifts toward 0, so lifetimes come out *earlier* (every provided
/// quantile path is non-decreasing in its uniform argument); `θ < 0`
/// shifts toward 1. Each tilted draw contributes
/// `ln(f(v)/g(v)) = θ·v + ln((1 − e^{−θ})/θ)` to a running
/// log-likelihood-ratio, and re-weighting an estimator by
/// `exp(Σ log-ratios)` restores unbiasedness under the original
/// measure.
///
/// The warp is exact inverse-CDF sampling: `v = −ln_1p(−u·s)/θ` with
/// `s = 1 − e^{−θ}`, so `v` stays strictly below 1 whenever `u < 1`
/// and the downstream quantile's `p < 1` requirement is preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tilt {
    /// Tilt strength θ (nonzero, finite).
    theta: f64,
    /// Hoisted `1 − e^{−θ}`, computed as `−expm1(−θ)`.
    scale: f64,
    /// Hoisted `ln((1 − e^{−θ})/θ)`, the constant part of each draw's
    /// log-likelihood-ratio.
    log_norm: f64,
}

impl Tilt {
    /// Builds a tilt of strength `theta`.
    ///
    /// `theta` must be finite and nonzero (a zero tilt is the identity;
    /// callers represent "no tilt" as the absence of a `Tilt`).
    pub fn new(theta: f64) -> Result<Tilt, DistError> {
        if !theta.is_finite() || theta == 0.0 {
            return Err(DistError::InvalidParameter {
                name: "theta",
                value: theta,
                constraint: "must be finite and nonzero",
            });
        }
        let scale = -(-theta).exp_m1();
        Ok(Tilt {
            theta,
            scale,
            log_norm: (scale / theta).ln(),
        })
    }

    /// The tilt strength θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Warps a plain uniform `u ∈ [0, 1)` into a tilted uniform
    /// `v ∈ [0, 1)`, returning `(v, log-likelihood-ratio)` where the
    /// second component is `ln(f(v)/g(v))` for this single draw.
    pub fn warp(&self, u: f64) -> (f64, f64) {
        let v = -(-u * self.scale).ln_1p() / self.theta;
        (v, self.theta * v + self.log_norm)
    }
}

/// A defensive forcing warp of the unit-uniform variate feeding a
/// quantile transform: the importance-sampling primitive for *window
/// forcing* (push a draw into a target sub-interval `[0, q)` of its
/// uniform domain with boosted probability).
///
/// With mixture weight `α = fraction`, the sampling density over the
/// uniform domain becomes
///
/// ```text
/// g(v) = α·(1/q)·1[v < q]  +  (1 − α)·1
/// ```
///
/// — a mixture of "forced uniformly into the window" and the plain
/// uniform. Unlike an exponential tilt, the likelihood ratio
/// `f(v)/g(v)` takes exactly **two** values: `1/(α/q + 1 − α)` inside
/// the window and `1/(1 − α)` outside. A forced draw therefore
/// contributes bounded, near-constant weight noise no matter how small
/// `q` is, which is what makes state-dependent forcing effective where
/// static tilting is not (see DESIGN.md §16).
///
/// The mixture is inverted from a *single* uniform through the
/// piecewise-linear CDF `G(v) = (α/q + 1 − α)·v` for `v < q`,
/// `G(v) = α + (1 − α)·v` beyond, so a forced draw consumes exactly one
/// RNG word, exactly like a plain draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forcing {
    fraction: f64,
}

impl Forcing {
    /// Creates a forcing warp with mixture weight `fraction` on the
    /// forced component.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless
    /// `0 < fraction ≤ 0.5`. The upper bound keeps the out-of-window
    /// likelihood ratio at most `2`, so the accumulated log-weight of a
    /// bounded number of forced draws stays within the exact
    /// fixed-point range of the weighted statistics (DESIGN.md §16).
    pub fn new(fraction: f64) -> Result<Forcing, DistError> {
        if !(fraction > 0.0 && fraction <= 0.5 && fraction.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "fraction",
                value: fraction,
                constraint: "must lie in (0, 0.5]",
            });
        }
        Ok(Forcing { fraction })
    }

    /// The mixture weight α on the forced component.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Warps a plain uniform `u ∈ [0, 1)` given the window mass
    /// `q ∈ (0, 1)`, returning `(v, log-likelihood-ratio)` with
    /// `v ∈ [0, 1)` and the second component `ln(f(v)/g(v))` for this
    /// single draw.
    ///
    /// A degenerate window (`q ≤ 0`, `q ≥ 1`, or non-finite) admits no
    /// measure change: the uniform passes through untouched with ratio
    /// exactly 1, mirroring how [`Tilt`] degenerates on point masses.
    pub fn warp(&self, u: f64, q: f64) -> (f64, f64) {
        if !(q > 0.0 && q < 1.0) {
            return (u, 0.0);
        }
        let a = self.fraction;
        // Mixture CDF knee at v = q: G(q) = α + (1 − α)·q.
        let knee = a + (1.0 - a) * q;
        if u < knee {
            let boost = a / q + (1.0 - a);
            (u / boost, -boost.ln())
        } else {
            ((u - a) / (1.0 - a), -(1.0 - a).ln())
        }
    }
}

/// Numerical-evaluation mode for the block sampling paths.
///
/// [`MathMode::Exact`] keeps every block draw bit-identical to the
/// scalar path — the default everywhere. [`MathMode::Fast`] permits
/// algebraic rewrites that change the float-op sequence (`sqrt` for
/// `powf(0.5)`, squaring for `powf(2.0)`, identity for `powf(1.0)`),
/// trading bit-identity for throughput; the relative error per draw is
/// bounded by a few ULPs (the equivalence suite enforces `< 1e-12`
/// relative). Fast mode is opt-in (the CLI's `--fast-math`) and
/// perturbs checkpoint fingerprints so exact and fast runs never mix —
/// see DESIGN.md §18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MathMode {
    /// Bit-identical float-op sequences — the block-draw contract.
    #[default]
    Exact,
    /// Allow exponent-specializing rewrites of `powf`; results agree
    /// with [`MathMode::Exact`] to within documented tolerance, not
    /// bit-for-bit.
    Fast,
}

/// A lifetime distribution lowered to a monomorphic sampling kernel.
///
/// Construct via [`SampleKernel::lower`]; draw via
/// [`SampleKernel::sample`] / [`SampleKernel::sample_conditional`].
/// Both are bit-identical to the `dyn LifeDistribution` methods they
/// replace (see the module docs for the contract and the lowering
/// table).
///
/// The `*_block` methods evaluate a whole buffer of draws at once:
/// uniforms are filled first ([`crate::rng::fill_uniforms`], preserving
/// RNG word order), warps are applied in scalar order (preserving
/// log-weight accumulation order), and the pure inverse-CDF transform
/// then runs as a dense loop the autovectorizer can lift. Under
/// [`MathMode::Exact`] every block method consumes exactly the same RNG
/// words and produces bit-identical `f64`s to the equivalent sequence
/// of scalar calls — enforced per variant by the `kernel_equivalence`
/// property suite.
#[derive(Debug, Clone)]
pub enum SampleKernel {
    /// Inlined three-parameter Weibull inverse CDF with `1/β`
    /// precomputed.
    Weibull3 {
        /// Location γ, hours.
        gamma: f64,
        /// Scale η, hours.
        eta: f64,
        /// Shape β (needed by the conditional path's `sf`/`cdf`).
        beta: f64,
        /// Hoisted `1.0 / β`, exactly the value the `dyn` quantile
        /// computes inline on every call.
        inv_beta: f64,
    },
    /// Inlined exponential inverse CDF; the conditional draw is
    /// memoryless.
    Exponential {
        /// Constant hazard rate λ, per hour.
        rate: f64,
    },
    /// Inlined three-parameter lognormal inverse CDF.
    Lognormal {
        /// Location γ, hours.
        gamma: f64,
        /// Log-mean μ.
        mu: f64,
        /// Log-standard-deviation σ.
        sigma: f64,
    },
    /// Point mass: returns the value without consuming any RNG draws,
    /// exactly like the `dyn` overrides.
    Degenerate {
        /// The point of support, hours.
        value: f64,
    },
    /// Weighted mixture over recursively lowered component kernels.
    Mixture {
        /// `(weight, lowered component)` pairs in construction order.
        components: Vec<(f64, SampleKernel)>,
        /// The source distribution, kept for the conditional path
        /// (numeric CDF inversion has no monomorphic shortcut).
        source: Arc<dyn LifeDistribution>,
    },
    /// Competing risks: minimum over recursively lowered mechanism
    /// kernels.
    Competing {
        /// Lowered failure mechanisms in construction order.
        risks: Vec<SampleKernel>,
        /// The source distribution, kept for the conditional path.
        source: Arc<dyn LifeDistribution>,
    },
    /// Fallback for implementations without a kernel: every draw goes
    /// through the original `dyn` methods, so unknown families keep
    /// working unchanged.
    Boxed {
        /// The source distribution.
        source: Arc<dyn LifeDistribution>,
    },
}

impl SampleKernel {
    /// Lowers a distribution to its sampling kernel, falling back to
    /// [`SampleKernel::Boxed`] for implementations that do not provide
    /// one.
    pub fn lower(dist: &Arc<dyn LifeDistribution>) -> SampleKernel {
        dist.lower_kernel().unwrap_or_else(|| SampleKernel::Boxed {
            source: Arc::clone(dist),
        })
    }

    /// Short variant name, for diagnostics and tests.
    pub fn variant_name(&self) -> &'static str {
        match self {
            SampleKernel::Weibull3 { .. } => "weibull3",
            SampleKernel::Exponential { .. } => "exponential",
            SampleKernel::Lognormal { .. } => "lognormal",
            SampleKernel::Degenerate { .. } => "degenerate",
            SampleKernel::Mixture { .. } => "mixture",
            SampleKernel::Competing { .. } => "competing",
            SampleKernel::Boxed { .. } => "boxed",
        }
    }

    /// Draws one lifetime; bit-identical to
    /// [`LifeDistribution::sample`] on the source distribution.
    pub fn sample(&self, rng: &mut dyn Rng) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                inv_beta,
                ..
            } => {
                let u = rng_f64(rng);
                weibull_quantile(*gamma, *eta, *inv_beta, u)
            }
            SampleKernel::Exponential { rate } => {
                let u = rng_f64(rng);
                -(1.0 - u).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let u = rng_f64(rng);
                lognormal_quantile(*gamma, *mu, *sigma, u)
            }
            SampleKernel::Degenerate { value } => *value,
            SampleKernel::Mixture { components, .. } => {
                let mut u = rng_f64(rng);
                for (w, k) in components {
                    if u < *w {
                        return k.sample(rng);
                    }
                    u -= w;
                }
                // Floating-point slack: fall through to the last
                // component, as the dyn path does.
                components
                    .last()
                    .expect("mixture is never empty")
                    .1
                    .sample(rng)
            }
            SampleKernel::Competing { risks, .. } => risks
                .iter()
                .map(|k| k.sample(rng))
                .fold(f64::INFINITY, f64::min),
            SampleKernel::Boxed { source } => source.sample(rng),
        }
    }

    /// Draws a residual lifetime conditional on survival to `t0`;
    /// bit-identical to [`LifeDistribution::sample_conditional`] on the
    /// source distribution.
    pub fn sample_conditional(&self, t0: f64, rng: &mut dyn Rng) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                // The trait-default conditional inversion over the
                // Weibull sf/cdf/quantile overrides.
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let u = rng_f64(rng);
                let p = weibull_cdf(*gamma, *eta, *beta, t0) + u * s0;
                (weibull_quantile(*gamma, *eta, *inv_beta, p) - t0).max(0.0)
            }
            SampleKernel::Exponential { rate } => {
                // Memorylessness, matching the dyn override.
                let u = rng_f64(rng);
                -(1.0 - u).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                // Trait-default inversion; Lognormal overrides cdf but
                // not sf, so s0 is the default `(1 - cdf).max(0)` over
                // the same cdf evaluation.
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let u = rng_f64(rng);
                let p = f0 + u * s0;
                (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0)
            }
            SampleKernel::Degenerate { value } => (value - t0).max(0.0),
            // The composite conditionals run through numeric CDF
            // inversion with no hot-path shortcut; delegating to the
            // source object is trivially bit-identical.
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => source.sample_conditional(t0, rng),
        }
    }

    /// Draws one lifetime under the tilted measure, accumulating the
    /// draw's log-likelihood-ratio into `log_weight`.
    ///
    /// The tilt warps the uniform variate (see [`Tilt`]) and evaluates
    /// the *same* quantile float-op sequence as [`SampleKernel::sample`],
    /// so the change of measure is exactly the warp's density ratio:
    ///
    /// * quantile families (`Weibull3`, `Exponential`, `Lognormal`)
    ///   warp their single uniform;
    /// * `Degenerate` is a point mass — no measure change is possible
    ///   and none is applied (ratio 1);
    /// * `Mixture` leaves the component-selector draw untilted (the
    ///   mixture weights are part of the model, not the sampler) and
    ///   tilts only the chosen component;
    /// * `Competing` tilts every mechanism draw, so the ratio is the
    ///   product over mechanisms;
    /// * `Boxed` falls back to the untilted `dyn` path with ratio 1 —
    ///   unknown families stay correct, just un-accelerated.
    pub fn sample_tilted(&self, tilt: Tilt, log_weight: &mut f64, rng: &mut dyn Rng) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                inv_beta,
                ..
            } => {
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                weibull_quantile(*gamma, *eta, *inv_beta, v)
            }
            SampleKernel::Exponential { rate } => {
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                -(1.0 - v).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                lognormal_quantile(*gamma, *mu, *sigma, v)
            }
            SampleKernel::Degenerate { value } => *value,
            SampleKernel::Mixture { components, .. } => {
                let mut u = rng_f64(rng);
                for (w, k) in components {
                    if u < *w {
                        return k.sample_tilted(tilt, log_weight, rng);
                    }
                    u -= w;
                }
                components
                    .last()
                    .expect("mixture is never empty")
                    .1
                    .sample_tilted(tilt, log_weight, rng)
            }
            SampleKernel::Competing { risks, .. } => risks
                .iter()
                .map(|k| k.sample_tilted(tilt, log_weight, rng))
                .fold(f64::INFINITY, f64::min),
            SampleKernel::Boxed { source } => source.sample(rng),
        }
    }

    /// Draws a residual lifetime conditional on survival to `t0` under
    /// the tilted measure, accumulating the draw's log-likelihood-ratio
    /// into `log_weight`.
    ///
    /// The conditional inversion maps its uniform through
    /// `p = F(t0) + u·S(t0)`, which is strictly increasing in `u`, so
    /// tilting the uniform tilts the conditional distribution with the
    /// identical density ratio as [`Tilt::warp`]. Composite and boxed
    /// kernels fall back to the untilted `dyn` conditional (ratio 1),
    /// mirroring [`SampleKernel::sample_conditional`].
    pub fn sample_conditional_tilted(
        &self,
        t0: f64,
        tilt: Tilt,
        log_weight: &mut f64,
        rng: &mut dyn Rng,
    ) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                let p = weibull_cdf(*gamma, *eta, *beta, t0) + v * s0;
                (weibull_quantile(*gamma, *eta, *inv_beta, p) - t0).max(0.0)
            }
            SampleKernel::Exponential { rate } => {
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                -(1.0 - v).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let (v, lw) = tilt.warp(rng_f64(rng));
                *log_weight += lw;
                let p = f0 + v * s0;
                (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0)
            }
            SampleKernel::Degenerate { value } => (value - t0).max(0.0),
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => source.sample_conditional(t0, rng),
        }
    }

    /// Draws a residual lifetime conditional on survival to `t0`,
    /// *forcing* the draw into the residual window `(0, window]` with
    /// the boosted probability of [`Forcing`], and accumulating the
    /// draw's log-likelihood-ratio into `log_weight`.
    ///
    /// The window mass is `q = (F(t0 + window) − F(t0)) / S(t0)` — the
    /// conditional probability the residual lifetime ends inside the
    /// window — and the forcing warps the conditional uniform exactly
    /// as [`Forcing::warp`], so the measure change is the warp's
    /// two-valued density ratio. Degenerate cases (dead mass at `t0`,
    /// empty or full windows, point masses) apply no measure change;
    /// composite and boxed kernels fall back to the untilted `dyn`
    /// conditional with ratio 1, mirroring
    /// [`SampleKernel::sample_conditional_tilted`].
    pub fn sample_conditional_forced(
        &self,
        t0: f64,
        window: f64,
        forcing: Forcing,
        log_weight: &mut f64,
        rng: &mut dyn Rng,
    ) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let f0 = weibull_cdf(*gamma, *eta, *beta, t0);
                let q = (weibull_cdf(*gamma, *eta, *beta, t0 + window) - f0) / s0;
                let (v, lw) = forcing.warp(rng_f64(rng), q);
                *log_weight += lw;
                let p = f0 + v * s0;
                (weibull_quantile(*gamma, *eta, *inv_beta, p) - t0).max(0.0)
            }
            SampleKernel::Exponential { rate } => {
                // Memorylessness: the residual is Exponential(rate) and
                // the window mass is 1 − exp(−rate·window).
                let q = -(-rate * window).exp_m1();
                let (v, lw) = forcing.warp(rng_f64(rng), q);
                *log_weight += lw;
                -(1.0 - v).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let q = (lognormal_cdf(*gamma, *mu, *sigma, t0 + window) - f0) / s0;
                let (v, lw) = forcing.warp(rng_f64(rng), q);
                *log_weight += lw;
                let p = f0 + v * s0;
                (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0)
            }
            SampleKernel::Degenerate { value } => (value - t0).max(0.0),
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => source.sample_conditional(t0, rng),
        }
    }

    /// How many RNG words one draw from this kernel consumes, when that
    /// count is a constant: `Some(1)` for the quantile families
    /// (`Weibull3`, `Exponential`, `Lognormal`), `Some(0)` for
    /// `Degenerate`, and `None` for the composite and boxed kernels,
    /// whose consumption depends on the drawn values.
    ///
    /// Block consumers use this to decide eligibility: only kernels
    /// with a fixed word count can be pre-filled from a shared uniform
    /// buffer without shifting later draws in the stream.
    pub fn words_per_sample(&self) -> Option<usize> {
        match self {
            SampleKernel::Weibull3 { .. }
            | SampleKernel::Exponential { .. }
            | SampleKernel::Lognormal { .. } => Some(1),
            SampleKernel::Degenerate { .. } => Some(0),
            SampleKernel::Mixture { .. }
            | SampleKernel::Competing { .. }
            | SampleKernel::Boxed { .. } => None,
        }
    }

    /// Transforms a buffer of unit uniforms into lifetimes **in
    /// place** — the dense, pure half of a block draw. Element `i` of
    /// the output is exactly what [`SampleKernel::sample`] would have
    /// produced from uniform `us[i]` (under [`MathMode::Exact`],
    /// bit-for-bit).
    ///
    /// Only defined for kernels with a fixed word count
    /// ([`SampleKernel::words_per_sample`] `!= None`): `Degenerate`
    /// ignores the buffer contents and fills its point of support.
    ///
    /// # Panics
    ///
    /// Panics on composite or boxed kernels, whose draws cannot be
    /// expressed as a pure transform of pre-filled uniforms.
    pub fn samples_from_uniforms(&self, mode: MathMode, us: &mut [f64]) {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                inv_beta,
                ..
            } => {
                for u in us.iter_mut() {
                    *u = weibull_quantile_mode(*gamma, *eta, *inv_beta, *u, mode);
                }
            }
            SampleKernel::Exponential { rate } => {
                for u in us.iter_mut() {
                    *u = -(1.0 - *u).ln() / rate;
                }
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                for u in us.iter_mut() {
                    *u = lognormal_quantile(*gamma, *mu, *sigma, *u);
                }
            }
            SampleKernel::Degenerate { value } => us.fill(*value),
            SampleKernel::Mixture { .. }
            | SampleKernel::Competing { .. }
            | SampleKernel::Boxed { .. } => panic!(
                "samples_from_uniforms is undefined for {} kernels \
                 (no fixed uniform-to-sample transform)",
                self.variant_name()
            ),
        }
    }

    /// Fills `out` with draws; equivalent to calling
    /// [`SampleKernel::sample`] once per element. Under
    /// [`MathMode::Exact`] the block consumes the same RNG words and
    /// produces bit-identical `f64`s as the scalar loop.
    ///
    /// Quantile families fill their uniforms up front and then run the
    /// dense transform; `Degenerate` consumes no words; composite and
    /// boxed kernels fall back to the scalar loop (their word count is
    /// data-dependent).
    pub fn sample_block(&self, mode: MathMode, rng: &mut dyn Rng, out: &mut [f64]) {
        match self.words_per_sample() {
            Some(1) => {
                crate::rng::fill_uniforms(rng, out);
                self.samples_from_uniforms(mode, out);
            }
            Some(_) => self.samples_from_uniforms(mode, out),
            None => {
                for o in out.iter_mut() {
                    *o = self.sample(rng);
                }
            }
        }
    }

    /// Fills `out` with residual lifetimes conditional on survival to
    /// `t0`; equivalent to calling [`SampleKernel::sample_conditional`]
    /// once per element, with the per-call invariants (`S(t0)`,
    /// `F(t0)`) hoisted once per block. Under [`MathMode::Exact`] the
    /// block is bit-identical to the scalar loop.
    pub fn sample_conditional_block(
        &self,
        mode: MathMode,
        t0: f64,
        rng: &mut dyn Rng,
        out: &mut [f64],
    ) {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    // The scalar path returns 0.0 without consuming a
                    // word; replicate that for every element.
                    out.fill(0.0);
                    return;
                }
                let f0 = weibull_cdf(*gamma, *eta, *beta, t0);
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let p = f0 + *u * s0;
                    *u = (weibull_quantile_mode(*gamma, *eta, *inv_beta, p, mode) - t0).max(0.0);
                }
            }
            SampleKernel::Exponential { rate } => {
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    *u = -(1.0 - *u).ln() / rate;
                }
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    out.fill(0.0);
                    return;
                }
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let p = f0 + *u * s0;
                    *u = (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0);
                }
            }
            SampleKernel::Degenerate { value } => out.fill((value - t0).max(0.0)),
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => {
                for o in out.iter_mut() {
                    *o = source.sample_conditional(t0, rng);
                }
            }
        }
    }

    /// Fills `out` with tilted draws, accumulating each draw's
    /// log-likelihood-ratio into `log_weight` in element order;
    /// equivalent to calling [`SampleKernel::sample_tilted`] once per
    /// element. Under [`MathMode::Exact`] the block is bit-identical to
    /// the scalar loop: uniforms are filled in stream order, warps run
    /// in element order (so the log-weight sum associates identically),
    /// and the pure quantile transform is hoisted into a dense pass.
    pub fn sample_tilted_block(
        &self,
        mode: MathMode,
        tilt: Tilt,
        log_weight: &mut f64,
        rng: &mut dyn Rng,
        out: &mut [f64],
    ) {
        match self {
            SampleKernel::Weibull3 { .. }
            | SampleKernel::Exponential { .. }
            | SampleKernel::Lognormal { .. } => {
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = tilt.warp(*u);
                    *log_weight += lw;
                    *u = v;
                }
                self.samples_from_uniforms(mode, out);
            }
            SampleKernel::Degenerate { value } => out.fill(*value),
            SampleKernel::Mixture { .. } | SampleKernel::Competing { .. } => {
                for o in out.iter_mut() {
                    *o = self.sample_tilted(tilt, log_weight, rng);
                }
            }
            SampleKernel::Boxed { source } => {
                for o in out.iter_mut() {
                    *o = source.sample(rng);
                }
            }
        }
    }

    /// Fills `out` with tilted conditional draws; equivalent to calling
    /// [`SampleKernel::sample_conditional_tilted`] once per element,
    /// with `S(t0)`/`F(t0)` hoisted once per block. Bit-identical to
    /// the scalar loop under [`MathMode::Exact`].
    pub fn sample_conditional_tilted_block(
        &self,
        mode: MathMode,
        t0: f64,
        tilt: Tilt,
        log_weight: &mut f64,
        rng: &mut dyn Rng,
        out: &mut [f64],
    ) {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    out.fill(0.0);
                    return;
                }
                let f0 = weibull_cdf(*gamma, *eta, *beta, t0);
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = tilt.warp(*u);
                    *log_weight += lw;
                    let p = f0 + v * s0;
                    *u = (weibull_quantile_mode(*gamma, *eta, *inv_beta, p, mode) - t0).max(0.0);
                }
            }
            SampleKernel::Exponential { rate } => {
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = tilt.warp(*u);
                    *log_weight += lw;
                    *u = -(1.0 - v).ln() / rate;
                }
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    out.fill(0.0);
                    return;
                }
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = tilt.warp(*u);
                    *log_weight += lw;
                    let p = f0 + v * s0;
                    *u = (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0);
                }
            }
            SampleKernel::Degenerate { value } => out.fill((value - t0).max(0.0)),
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => {
                for o in out.iter_mut() {
                    *o = source.sample_conditional(t0, rng);
                }
            }
        }
    }

    /// Fills `out` with forced conditional draws; equivalent to calling
    /// [`SampleKernel::sample_conditional_forced`] once per element,
    /// with `S(t0)`/`F(t0)`/window mass `q` hoisted once per block.
    /// Bit-identical to the scalar loop under [`MathMode::Exact`].
    // Mirrors `sample_conditional_forced` plus the block mode/buffer;
    // bundling the forcing args would diverge the two signatures.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_conditional_forced_block(
        &self,
        mode: MathMode,
        t0: f64,
        window: f64,
        forcing: Forcing,
        log_weight: &mut f64,
        rng: &mut dyn Rng,
        out: &mut [f64],
    ) {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    out.fill(0.0);
                    return;
                }
                let f0 = weibull_cdf(*gamma, *eta, *beta, t0);
                let q = (weibull_cdf(*gamma, *eta, *beta, t0 + window) - f0) / s0;
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = forcing.warp(*u, q);
                    *log_weight += lw;
                    let p = f0 + v * s0;
                    *u = (weibull_quantile_mode(*gamma, *eta, *inv_beta, p, mode) - t0).max(0.0);
                }
            }
            SampleKernel::Exponential { rate } => {
                let q = -(-rate * window).exp_m1();
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = forcing.warp(*u, q);
                    *log_weight += lw;
                    *u = -(1.0 - v).ln() / rate;
                }
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    out.fill(0.0);
                    return;
                }
                let q = (lognormal_cdf(*gamma, *mu, *sigma, t0 + window) - f0) / s0;
                crate::rng::fill_uniforms(rng, out);
                for u in out.iter_mut() {
                    let (v, lw) = forcing.warp(*u, q);
                    *log_weight += lw;
                    let p = f0 + v * s0;
                    *u = (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0);
                }
            }
            SampleKernel::Degenerate { value } => out.fill((value - t0).max(0.0)),
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => {
                for o in out.iter_mut() {
                    *o = source.sample_conditional(t0, rng);
                }
            }
        }
    }
}

/// The exact float-op sequence of `Weibull3::quantile`, with the
/// reciprocal shape hoisted.
#[inline]
fn weibull_quantile(gamma: f64, eta: f64, inv_beta: f64, p: f64) -> f64 {
    weibull_quantile_mode(gamma, eta, inv_beta, p, MathMode::Exact)
}

/// [`weibull_quantile`] with a selectable evaluation mode: `Exact`
/// reproduces the scalar op sequence bit-for-bit; `Fast` specializes
/// the `powf` for the exponents that admit a cheaper exact-algebra
/// form (`0.5` → `sqrt`, `1.0` → identity, `2.0` → square), which
/// reorders float ops and is therefore only reachable through the
/// opt-in fast-math paths.
#[inline]
fn weibull_quantile_mode(gamma: f64, eta: f64, inv_beta: f64, p: f64, mode: MathMode) -> f64 {
    if p <= 0.0 {
        return gamma;
    }
    assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
    gamma + eta * powf_mode(-(-p).ln_1p(), inv_beta, mode)
}

/// `x.powf(e)` with [`MathMode::Fast`] exponent specialization.
#[inline]
fn powf_mode(x: f64, e: f64, mode: MathMode) -> f64 {
    match mode {
        MathMode::Exact => x.powf(e),
        MathMode::Fast => {
            if e == 0.5 {
                x.sqrt()
            } else if e == 1.0 {
                x
            } else if e == 2.0 {
                x * x
            } else {
                x.powf(e)
            }
        }
    }
}

/// The exact float-op sequence of `Weibull3::sf`.
#[inline]
fn weibull_sf(gamma: f64, eta: f64, beta: f64, t: f64) -> f64 {
    if t <= gamma {
        return 1.0;
    }
    let z = ((t - gamma) / eta).max(0.0);
    (-z.powf(beta)).exp()
}

/// The exact float-op sequence of `Weibull3::cdf`.
#[inline]
fn weibull_cdf(gamma: f64, eta: f64, beta: f64, t: f64) -> f64 {
    if t <= gamma {
        return 0.0;
    }
    let z = ((t - gamma) / eta).max(0.0);
    -(-z.powf(beta)).exp_m1()
}

/// The exact float-op sequence of `Lognormal::quantile`.
#[inline]
fn lognormal_quantile(gamma: f64, mu: f64, sigma: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return gamma;
    }
    assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
    gamma + (mu + sigma * crate::special::inv_std_normal(p)).exp()
}

/// The exact float-op sequence of `Lognormal::cdf`.
#[inline]
fn lognormal_cdf(gamma: f64, mu: f64, sigma: f64, t: f64) -> f64 {
    if t <= gamma {
        return 0.0;
    }
    crate::special::std_normal_cdf(((t - gamma).ln() - mu) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use crate::{CompetingRisks, Degenerate, Exponential, Lognormal, Mixture, Weibull3};

    fn lowered(d: Arc<dyn LifeDistribution>) -> (Arc<dyn LifeDistribution>, SampleKernel) {
        let k = SampleKernel::lower(&d);
        (d, k)
    }

    #[test]
    fn every_provided_family_lowers_to_its_own_variant() {
        let cases: Vec<(Arc<dyn LifeDistribution>, &str)> = vec![
            (Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()), "weibull3"),
            (Arc::new(Exponential::new(1e-5).unwrap()), "exponential"),
            (
                Arc::new(Lognormal::new(0.0, 2.0, 0.7).unwrap()),
                "lognormal",
            ),
            (Arc::new(Degenerate::new(24.0).unwrap()), "degenerate"),
            (
                Arc::new(
                    Mixture::new(vec![
                        (0.4, Arc::new(Weibull3::two_param(100.0, 0.8).unwrap()) as _),
                        (0.6, Arc::new(Exponential::new(0.01).unwrap()) as _),
                    ])
                    .unwrap(),
                ),
                "mixture",
            ),
            (
                Arc::new(
                    CompetingRisks::new(vec![
                        Arc::new(Weibull3::two_param(100.0, 2.0).unwrap()) as _,
                        Arc::new(Exponential::new(0.001).unwrap()) as _,
                    ])
                    .unwrap(),
                ),
                "competing",
            ),
        ];
        for (d, want) in cases {
            assert_eq!(SampleKernel::lower(&d).variant_name(), want);
        }
    }

    #[test]
    fn mixture_lowers_children_recursively() {
        let nested: Arc<dyn LifeDistribution> = Arc::new(
            Mixture::new(vec![
                (0.5, Arc::new(Degenerate::new(10.0).unwrap()) as _),
                (0.5, Arc::new(Weibull3::two_param(50.0, 1.5).unwrap()) as _),
            ])
            .unwrap(),
        );
        match SampleKernel::lower(&nested) {
            SampleKernel::Mixture { components, .. } => {
                assert_eq!(components[0].1.variant_name(), "degenerate");
                assert_eq!(components[1].1.variant_name(), "weibull3");
            }
            other => panic!("expected mixture, got {}", other.variant_name()),
        }
    }

    #[test]
    fn degenerate_kernel_consumes_no_draws() {
        let (_, k) = lowered(Arc::new(Degenerate::new(42.0).unwrap()));
        let mut a = stream(1, 0);
        let mut b = stream(1, 0);
        assert_eq!(k.sample(&mut a), 42.0);
        assert_eq!(k.sample_conditional(40.0, &mut a), 2.0);
        // The RNG state is untouched: both streams still agree.
        assert_eq!(rng_f64(&mut a), rng_f64(&mut b));
    }

    #[test]
    fn boxed_fallback_matches_dyn_exactly() {
        /// A family the lowering table does not know.
        #[derive(Debug)]
        struct Shifted(Exponential);
        impl LifeDistribution for Shifted {
            fn cdf(&self, t: f64) -> f64 {
                self.0.cdf(t - 5.0)
            }
            fn pdf(&self, t: f64) -> f64 {
                self.0.pdf(t - 5.0)
            }
            fn quantile(&self, p: f64) -> f64 {
                5.0 + self.0.quantile(p)
            }
            fn mean(&self) -> f64 {
                5.0 + self.0.mean()
            }
        }
        let d: Arc<dyn LifeDistribution> = Arc::new(Shifted(Exponential::new(0.01).unwrap()));
        let k = SampleKernel::lower(&d);
        assert_eq!(k.variant_name(), "boxed");
        let mut a = stream(9, 3);
        let mut b = stream(9, 3);
        for _ in 0..64 {
            assert_eq!(k.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
            assert_eq!(
                k.sample_conditional(7.0, &mut a).to_bits(),
                d.sample_conditional(7.0, &mut b).to_bits()
            );
        }
    }

    #[test]
    fn tilt_rejects_zero_and_non_finite_strengths() {
        assert!(Tilt::new(0.0).is_err());
        assert!(Tilt::new(f64::NAN).is_err());
        assert!(Tilt::new(f64::INFINITY).is_err());
        assert!(Tilt::new(f64::NEG_INFINITY).is_err());
        assert_eq!(Tilt::new(1.5).unwrap().theta(), 1.5);
    }

    #[test]
    fn tilt_warp_stays_in_unit_interval_and_is_monotone() {
        for theta in [-3.0, -0.4, 0.4, 1.0, 6.0] {
            let tilt = Tilt::new(theta).unwrap();
            let mut prev = -1.0;
            for i in 0..=1_000 {
                let u = f64::from(i) / 1_001.0;
                let (v, _) = tilt.warp(u);
                assert!(
                    (0.0..1.0).contains(&v),
                    "warp({u}) = {v} left [0, 1) at theta {theta}"
                );
                assert!(v > prev, "warp is not strictly increasing at theta {theta}");
                prev = v;
            }
            // The endpoint u = 0 maps exactly to v = 0.
            assert_eq!(tilt.warp(0.0).0, 0.0);
        }
    }

    #[test]
    fn tilt_log_ratio_matches_the_density_ratio() {
        // `warp` samples v from g(v) = θ·e^{−θv} / (1 − e^{−θ}) by
        // inverse CDF; the reported log-ratio must equal ln(1/g(v))
        // since the original density of the uniform is 1.
        for theta in [-2.0f64, -0.3, 0.7, 4.0] {
            let tilt = Tilt::new(theta).unwrap();
            let norm = -(-theta).exp_m1();
            for u in [0.001, 0.25, 0.5, 0.75, 0.999] {
                let (v, lw) = tilt.warp(u);
                let g = theta * (-theta * v).exp() / norm;
                let err = (lw - (1.0 / g).ln()).abs();
                assert!(err < 1e-12, "log-ratio off by {err} at theta {theta}");
            }
        }
    }

    #[test]
    fn positive_tilt_shifts_lifetimes_earlier() {
        let tilt = Tilt::new(2.0).unwrap();
        for u in [0.1, 0.5, 0.9] {
            assert!(tilt.warp(u).0 < u, "theta > 0 must contract toward 0");
        }
        let tilt = Tilt::new(-2.0).unwrap();
        for u in [0.1, 0.5, 0.9] {
            assert!(tilt.warp(u).0 > u, "theta < 0 must push toward 1");
        }
    }

    #[test]
    fn tilted_draw_is_the_quantile_of_the_warped_uniform() {
        let tilt = Tilt::new(1.3).unwrap();
        let dists: Vec<Arc<dyn LifeDistribution>> = vec![
            Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
            Arc::new(Exponential::new(1e-4).unwrap()),
            Arc::new(Lognormal::new(0.0, 2.0, 0.7).unwrap()),
        ];
        for d in dists {
            let k = SampleKernel::lower(&d);
            let mut a = stream(11, 0);
            let mut b = stream(11, 0);
            for _ in 0..64 {
                let mut lw = 0.0;
                let x = k.sample_tilted(tilt, &mut lw, &mut a);
                let (v, want_lw) = tilt.warp(rng_f64(&mut b));
                assert_eq!(x.to_bits(), d.quantile(v).to_bits());
                assert_eq!(lw.to_bits(), want_lw.to_bits());
            }
        }
    }

    #[test]
    fn degenerate_tilted_draw_consumes_no_rng_and_no_weight() {
        let (_, k) = lowered(Arc::new(Degenerate::new(42.0).unwrap()));
        let tilt = Tilt::new(2.0).unwrap();
        let mut a = stream(1, 0);
        let mut b = stream(1, 0);
        let mut lw = 0.0;
        assert_eq!(k.sample_tilted(tilt, &mut lw, &mut a), 42.0);
        assert_eq!(
            k.sample_conditional_tilted(40.0, tilt, &mut lw, &mut a),
            2.0
        );
        assert_eq!(lw, 0.0);
        assert_eq!(rng_f64(&mut a), rng_f64(&mut b));
    }

    #[test]
    fn boxed_tilted_draw_falls_back_with_unit_ratio() {
        #[derive(Debug)]
        struct Plain(Exponential);
        impl LifeDistribution for Plain {
            fn cdf(&self, t: f64) -> f64 {
                self.0.cdf(t)
            }
            fn pdf(&self, t: f64) -> f64 {
                self.0.pdf(t)
            }
            fn quantile(&self, p: f64) -> f64 {
                self.0.quantile(p)
            }
            fn mean(&self) -> f64 {
                self.0.mean()
            }
        }
        let d: Arc<dyn LifeDistribution> = Arc::new(Plain(Exponential::new(0.01).unwrap()));
        let k = SampleKernel::lower(&d);
        assert_eq!(k.variant_name(), "boxed");
        let tilt = Tilt::new(1.0).unwrap();
        let mut a = stream(3, 5);
        let mut b = stream(3, 5);
        let mut lw = 0.0;
        for _ in 0..32 {
            assert_eq!(
                k.sample_tilted(tilt, &mut lw, &mut a).to_bits(),
                d.sample(&mut b).to_bits()
            );
        }
        assert_eq!(lw, 0.0);
    }

    #[test]
    fn mixture_selector_stays_untilted() {
        // A single-component mixture must reduce to the component's
        // tilted draw after one selector uniform is consumed.
        let inner: Arc<dyn LifeDistribution> = Arc::new(Weibull3::two_param(1_000.0, 1.4).unwrap());
        let mix: Arc<dyn LifeDistribution> =
            Arc::new(Mixture::new(vec![(1.0, Arc::clone(&inner))]).unwrap());
        let km = SampleKernel::lower(&mix);
        let ki = SampleKernel::lower(&inner);
        let tilt = Tilt::new(0.9).unwrap();
        let mut a = stream(7, 2);
        let mut b = stream(7, 2);
        let mut lwa = 0.0;
        let mut lwb = 0.0;
        let x = km.sample_tilted(tilt, &mut lwa, &mut a);
        let _selector = rng_f64(&mut b);
        let y = ki.sample_tilted(tilt, &mut lwb, &mut b);
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(lwa.to_bits(), lwb.to_bits());
    }

    #[test]
    fn conditional_tilted_draw_warps_the_conditional_uniform() {
        let tilt = Tilt::new(1.1).unwrap();
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap());
        let k = SampleKernel::lower(&d);
        let t0 = 10.0;
        let mut a = stream(13, 1);
        let mut b = stream(13, 1);
        for _ in 0..64 {
            let mut lw = 0.0;
            let x = k.sample_conditional_tilted(t0, tilt, &mut lw, &mut a);
            let (v, want_lw) = tilt.warp(rng_f64(&mut b));
            let p = d.cdf(t0) + v * (1.0 - d.cdf(t0));
            let want = (d.quantile(p) - t0).max(0.0);
            assert_eq!(x.to_bits(), want.to_bits());
            assert_eq!(lw.to_bits(), want_lw.to_bits());
        }
    }

    #[test]
    fn forcing_rejects_out_of_range_fractions() {
        for bad in [0.0, -0.2, 0.500001, 1.0, f64::NAN, f64::INFINITY] {
            assert!(
                Forcing::new(bad).is_err(),
                "fraction {bad} must be rejected"
            );
        }
        assert_eq!(Forcing::new(0.3).unwrap().fraction(), 0.3);
        assert_eq!(Forcing::new(0.5).unwrap().fraction(), 0.5);
    }

    #[test]
    fn forcing_warp_is_monotone_and_stays_in_unit_interval() {
        for (fraction, q) in [(0.1, 1e-6), (0.3, 0.02), (0.5, 0.4), (0.25, 0.9)] {
            let f = Forcing::new(fraction).unwrap();
            let mut prev = -1.0;
            for i in 0..1000 {
                let u = i as f64 / 1000.0;
                let (v, _) = f.warp(u, q);
                assert!(
                    (0.0..1.0).contains(&v),
                    "fraction {fraction} q {q}: warp({u}) = {v} outside [0, 1)"
                );
                assert!(v >= prev, "warp must be monotone at u = {u}");
                prev = v;
            }
        }
    }

    #[test]
    fn forcing_log_ratio_matches_the_density_ratio() {
        // Inside the window the sampling density is α/q + 1 − α; outside
        // it is 1 − α. The returned log-ratio must be −ln(g(v)) exactly.
        let fraction = 0.3;
        let q = 0.05;
        let f = Forcing::new(fraction).unwrap();
        let boost = fraction / q + (1.0 - fraction);
        let mut saw_forced = false;
        let mut saw_plain = false;
        for i in 0..200 {
            let u = i as f64 / 200.0;
            let (v, lw) = f.warp(u, q);
            if v < q {
                saw_forced = true;
                assert_eq!(lw.to_bits(), (-boost.ln()).to_bits());
            } else {
                saw_plain = true;
                assert_eq!(lw.to_bits(), (-(1.0f64 - fraction).ln()).to_bits());
            }
        }
        assert!(saw_forced && saw_plain, "both branches must be exercised");
    }

    #[test]
    fn forcing_warp_preserves_expectations() {
        // Unbiasedness at the single-draw level: for any h, the
        // reweighted average of h(v) over u ~ U[0, 1) equals the plain
        // average of h(u). Midpoint quadrature at 200k points; h is the
        // window indicator (the function forcing distorts the most).
        let f = Forcing::new(0.4).unwrap();
        let q = 0.003;
        let n = 200_000;
        let mut mass = 0.0;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            let (v, lw) = f.warp(u, q);
            if v < q {
                mass += lw.exp();
            }
        }
        mass /= n as f64;
        assert!(
            (mass - q).abs() < 1e-6,
            "reweighted window mass {mass} must equal q = {q}"
        );
    }

    #[test]
    fn degenerate_forcing_windows_pass_through() {
        let f = Forcing::new(0.2).unwrap();
        for q in [0.0, -0.5, 1.0, 1.5, f64::NAN] {
            for u in [0.0, 0.37, 0.999] {
                let (v, lw) = f.warp(u, q);
                assert_eq!(v.to_bits(), u.to_bits());
                assert_eq!(lw, 0.0);
            }
        }
    }

    #[test]
    fn forced_conditional_draw_warps_the_conditional_uniform() {
        let forcing = Forcing::new(0.35).unwrap();
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap());
        let k = SampleKernel::lower(&d);
        let t0 = 10.0;
        let window = 3.0;
        let mut a = stream(17, 4);
        let mut b = stream(17, 4);
        for _ in 0..64 {
            let mut lw = 0.0;
            let x = k.sample_conditional_forced(t0, window, forcing, &mut lw, &mut a);
            let f0 = d.cdf(t0);
            let s0 = 1.0 - f0;
            let q = (d.cdf(t0 + window) - f0) / s0;
            let (v, want_lw) = forcing.warp(rng_f64(&mut b), q);
            let want = (d.quantile(f0 + v * s0) - t0).max(0.0);
            assert_eq!(x.to_bits(), want.to_bits());
            assert_eq!(lw.to_bits(), want_lw.to_bits());
        }
    }

    #[test]
    fn forced_draws_land_in_the_window_with_boosted_probability() {
        // Exponential with a window holding ~0.1% of the residual mass:
        // plain conditional draws essentially never land inside, forced
        // draws do so with probability ≈ α + (1 − α)q ≈ 0.3.
        let d: Arc<dyn LifeDistribution> = Arc::new(Exponential::new(1e-5).unwrap());
        let k = SampleKernel::lower(&d);
        let forcing = Forcing::new(0.3).unwrap();
        let window = 100.0; // q ≈ 1e-3
        let mut rng = stream(23, 0);
        let n = 2_000;
        let mut hits = 0;
        for _ in 0..n {
            let mut lw = 0.0;
            let r = k.sample_conditional_forced(5_000.0, window, forcing, &mut lw, &mut rng);
            if r <= window {
                hits += 1;
                assert!(lw < 0.0, "a forced hit must be down-weighted");
            } else {
                assert!(lw > 0.0, "a miss must be up-weighted");
            }
        }
        let rate = hits as f64 / n as f64;
        assert!(
            (0.25..0.36).contains(&rate),
            "hit rate {rate} must sit near the forcing fraction 0.3"
        );
    }

    #[test]
    fn boxed_forced_draw_falls_back_with_unit_ratio() {
        // Composite kernels have no monomorphic conditional: the forced
        // draw degrades to the plain dyn conditional with ratio 1.
        let mix: Arc<dyn LifeDistribution> = Arc::new(
            Mixture::new(vec![(1.0, Arc::new(Exponential::new(1e-4).unwrap()) as _)]).unwrap(),
        );
        let k = SampleKernel::lower(&mix);
        let forcing = Forcing::new(0.25).unwrap();
        let mut a = stream(29, 0);
        let mut b = stream(29, 0);
        let mut lw = 0.0;
        let x = k.sample_conditional_forced(100.0, 50.0, forcing, &mut lw, &mut a);
        let y = mix.sample_conditional(100.0, &mut b);
        assert_eq!(x.to_bits(), y.to_bits());
        assert_eq!(lw, 0.0);
    }
}
