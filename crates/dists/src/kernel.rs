//! Monomorphic sampling kernels: the simulation hot path's view of a
//! lifetime distribution.
//!
//! The engines store model transitions as `Arc<dyn LifeDistribution>`,
//! which is the right shape for configuration (any family, any nesting)
//! but the wrong shape for the inner Monte Carlo loop: every draw pays
//! a virtual call, and the closed-form quantile paths recompute
//! invariants such as `1/β` on each evaluation. A [`SampleKernel`] is
//! the same distribution *lowered once per run* into a flat enum the
//! optimizer can inline and the caller can keep in a per-worker
//! session, with those invariants precomputed.
//!
//! # Bit-identity contract
//!
//! Lowering must be **invisible in the results**: for any seeded RNG,
//! [`SampleKernel::sample`] and [`SampleKernel::sample_conditional`]
//! must consume exactly the same RNG draws and produce bit-identical
//! `f64`s to the `dyn LifeDistribution` methods they replace. That
//! restricts the allowed transformations to:
//!
//! * hoisting pure recomputed subexpressions (`1/β` feeds the same
//!   `powf` it always did — division is deterministic, so the hoisted
//!   value is the bit pattern the `dyn` path computed inline), and
//! * inlining the exact float-op sequence of the concrete overrides
//!   (including each family's choice of `ln_1p` vs `ln`, and the
//!   trait-default conditional inversion where a family does not
//!   override it).
//!
//! Algebraic rewrites that change the op sequence — e.g. `sqrt` in
//! place of `powf(0.5)` for β = 2 — are **excluded**: they are faster
//! but not bit-equal. The `kernel_equivalence` property suite enforces
//! the contract for every variant over random parameters and seeds.
//!
//! # Lowering table
//!
//! | `dyn` implementation | kernel variant | notes |
//! |---|---|---|
//! | [`crate::Weibull3`] | [`SampleKernel::Weibull3`] | `1/β` precomputed; conditional inlines the trait default over the Weibull `sf`/`cdf`/`quantile` overrides |
//! | [`crate::Exponential`] | [`SampleKernel::Exponential`] | conditional is memoryless, matching the override |
//! | [`crate::Lognormal`] | [`SampleKernel::Lognormal`] | conditional inlines the trait default (`sf` is the trait default `1 − cdf`) |
//! | [`crate::Degenerate`] | [`SampleKernel::Degenerate`] | consumes **no** RNG draws, matching both overrides |
//! | [`crate::Mixture`] | [`SampleKernel::Mixture`] | children lowered recursively; conditional delegates to the source object (numeric CDF inversion) |
//! | [`crate::CompetingRisks`] | [`SampleKernel::Competing`] | children lowered recursively; conditional delegates to the source object |
//! | anything else | [`SampleKernel::Boxed`] | full fallback to the `dyn` methods (e.g. future empirical resampling distributions — [`crate::empirical`] currently defines estimators, not `LifeDistribution`s) |

use crate::{rng_f64, LifeDistribution};
use rand::Rng;
use std::sync::Arc;

/// A lifetime distribution lowered to a monomorphic sampling kernel.
///
/// Construct via [`SampleKernel::lower`]; draw via
/// [`SampleKernel::sample`] / [`SampleKernel::sample_conditional`].
/// Both are bit-identical to the `dyn LifeDistribution` methods they
/// replace (see the module docs for the contract and the lowering
/// table).
#[derive(Debug, Clone)]
pub enum SampleKernel {
    /// Inlined three-parameter Weibull inverse CDF with `1/β`
    /// precomputed.
    Weibull3 {
        /// Location γ, hours.
        gamma: f64,
        /// Scale η, hours.
        eta: f64,
        /// Shape β (needed by the conditional path's `sf`/`cdf`).
        beta: f64,
        /// Hoisted `1.0 / β`, exactly the value the `dyn` quantile
        /// computes inline on every call.
        inv_beta: f64,
    },
    /// Inlined exponential inverse CDF; the conditional draw is
    /// memoryless.
    Exponential {
        /// Constant hazard rate λ, per hour.
        rate: f64,
    },
    /// Inlined three-parameter lognormal inverse CDF.
    Lognormal {
        /// Location γ, hours.
        gamma: f64,
        /// Log-mean μ.
        mu: f64,
        /// Log-standard-deviation σ.
        sigma: f64,
    },
    /// Point mass: returns the value without consuming any RNG draws,
    /// exactly like the `dyn` overrides.
    Degenerate {
        /// The point of support, hours.
        value: f64,
    },
    /// Weighted mixture over recursively lowered component kernels.
    Mixture {
        /// `(weight, lowered component)` pairs in construction order.
        components: Vec<(f64, SampleKernel)>,
        /// The source distribution, kept for the conditional path
        /// (numeric CDF inversion has no monomorphic shortcut).
        source: Arc<dyn LifeDistribution>,
    },
    /// Competing risks: minimum over recursively lowered mechanism
    /// kernels.
    Competing {
        /// Lowered failure mechanisms in construction order.
        risks: Vec<SampleKernel>,
        /// The source distribution, kept for the conditional path.
        source: Arc<dyn LifeDistribution>,
    },
    /// Fallback for implementations without a kernel: every draw goes
    /// through the original `dyn` methods, so unknown families keep
    /// working unchanged.
    Boxed {
        /// The source distribution.
        source: Arc<dyn LifeDistribution>,
    },
}

impl SampleKernel {
    /// Lowers a distribution to its sampling kernel, falling back to
    /// [`SampleKernel::Boxed`] for implementations that do not provide
    /// one.
    pub fn lower(dist: &Arc<dyn LifeDistribution>) -> SampleKernel {
        dist.lower_kernel().unwrap_or_else(|| SampleKernel::Boxed {
            source: Arc::clone(dist),
        })
    }

    /// Short variant name, for diagnostics and tests.
    pub fn variant_name(&self) -> &'static str {
        match self {
            SampleKernel::Weibull3 { .. } => "weibull3",
            SampleKernel::Exponential { .. } => "exponential",
            SampleKernel::Lognormal { .. } => "lognormal",
            SampleKernel::Degenerate { .. } => "degenerate",
            SampleKernel::Mixture { .. } => "mixture",
            SampleKernel::Competing { .. } => "competing",
            SampleKernel::Boxed { .. } => "boxed",
        }
    }

    /// Draws one lifetime; bit-identical to
    /// [`LifeDistribution::sample`] on the source distribution.
    pub fn sample(&self, rng: &mut dyn Rng) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                inv_beta,
                ..
            } => {
                let u = rng_f64(rng);
                weibull_quantile(*gamma, *eta, *inv_beta, u)
            }
            SampleKernel::Exponential { rate } => {
                let u = rng_f64(rng);
                -(1.0 - u).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                let u = rng_f64(rng);
                lognormal_quantile(*gamma, *mu, *sigma, u)
            }
            SampleKernel::Degenerate { value } => *value,
            SampleKernel::Mixture { components, .. } => {
                let mut u = rng_f64(rng);
                for (w, k) in components {
                    if u < *w {
                        return k.sample(rng);
                    }
                    u -= w;
                }
                // Floating-point slack: fall through to the last
                // component, as the dyn path does.
                components
                    .last()
                    .expect("mixture is never empty")
                    .1
                    .sample(rng)
            }
            SampleKernel::Competing { risks, .. } => risks
                .iter()
                .map(|k| k.sample(rng))
                .fold(f64::INFINITY, f64::min),
            SampleKernel::Boxed { source } => source.sample(rng),
        }
    }

    /// Draws a residual lifetime conditional on survival to `t0`;
    /// bit-identical to [`LifeDistribution::sample_conditional`] on the
    /// source distribution.
    pub fn sample_conditional(&self, t0: f64, rng: &mut dyn Rng) -> f64 {
        match self {
            SampleKernel::Weibull3 {
                gamma,
                eta,
                beta,
                inv_beta,
            } => {
                // The trait-default conditional inversion over the
                // Weibull sf/cdf/quantile overrides.
                let s0 = weibull_sf(*gamma, *eta, *beta, t0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let u = rng_f64(rng);
                let p = weibull_cdf(*gamma, *eta, *beta, t0) + u * s0;
                (weibull_quantile(*gamma, *eta, *inv_beta, p) - t0).max(0.0)
            }
            SampleKernel::Exponential { rate } => {
                // Memorylessness, matching the dyn override.
                let u = rng_f64(rng);
                -(1.0 - u).ln() / rate
            }
            SampleKernel::Lognormal { gamma, mu, sigma } => {
                // Trait-default inversion; Lognormal overrides cdf but
                // not sf, so s0 is the default `(1 - cdf).max(0)` over
                // the same cdf evaluation.
                let f0 = lognormal_cdf(*gamma, *mu, *sigma, t0);
                let s0 = (1.0 - f0).max(0.0);
                if s0 <= 0.0 {
                    return 0.0;
                }
                let u = rng_f64(rng);
                let p = f0 + u * s0;
                (lognormal_quantile(*gamma, *mu, *sigma, p) - t0).max(0.0)
            }
            SampleKernel::Degenerate { value } => (value - t0).max(0.0),
            // The composite conditionals run through numeric CDF
            // inversion with no hot-path shortcut; delegating to the
            // source object is trivially bit-identical.
            SampleKernel::Mixture { source, .. }
            | SampleKernel::Competing { source, .. }
            | SampleKernel::Boxed { source } => source.sample_conditional(t0, rng),
        }
    }
}

/// The exact float-op sequence of `Weibull3::quantile`, with the
/// reciprocal shape hoisted.
#[inline]
fn weibull_quantile(gamma: f64, eta: f64, inv_beta: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return gamma;
    }
    assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
    gamma + eta * (-(-p).ln_1p()).powf(inv_beta)
}

/// The exact float-op sequence of `Weibull3::sf`.
#[inline]
fn weibull_sf(gamma: f64, eta: f64, beta: f64, t: f64) -> f64 {
    if t <= gamma {
        return 1.0;
    }
    let z = ((t - gamma) / eta).max(0.0);
    (-z.powf(beta)).exp()
}

/// The exact float-op sequence of `Weibull3::cdf`.
#[inline]
fn weibull_cdf(gamma: f64, eta: f64, beta: f64, t: f64) -> f64 {
    if t <= gamma {
        return 0.0;
    }
    let z = ((t - gamma) / eta).max(0.0);
    -(-z.powf(beta)).exp_m1()
}

/// The exact float-op sequence of `Lognormal::quantile`.
#[inline]
fn lognormal_quantile(gamma: f64, mu: f64, sigma: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return gamma;
    }
    assert!(p < 1.0, "quantile requires p in [0, 1), got {p}");
    gamma + (mu + sigma * crate::special::inv_std_normal(p)).exp()
}

/// The exact float-op sequence of `Lognormal::cdf`.
#[inline]
fn lognormal_cdf(gamma: f64, mu: f64, sigma: f64, t: f64) -> f64 {
    if t <= gamma {
        return 0.0;
    }
    crate::special::std_normal_cdf(((t - gamma).ln() - mu) / sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use crate::{CompetingRisks, Degenerate, Exponential, Lognormal, Mixture, Weibull3};

    fn lowered(d: Arc<dyn LifeDistribution>) -> (Arc<dyn LifeDistribution>, SampleKernel) {
        let k = SampleKernel::lower(&d);
        (d, k)
    }

    #[test]
    fn every_provided_family_lowers_to_its_own_variant() {
        let cases: Vec<(Arc<dyn LifeDistribution>, &str)> = vec![
            (Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()), "weibull3"),
            (Arc::new(Exponential::new(1e-5).unwrap()), "exponential"),
            (
                Arc::new(Lognormal::new(0.0, 2.0, 0.7).unwrap()),
                "lognormal",
            ),
            (Arc::new(Degenerate::new(24.0).unwrap()), "degenerate"),
            (
                Arc::new(
                    Mixture::new(vec![
                        (0.4, Arc::new(Weibull3::two_param(100.0, 0.8).unwrap()) as _),
                        (0.6, Arc::new(Exponential::new(0.01).unwrap()) as _),
                    ])
                    .unwrap(),
                ),
                "mixture",
            ),
            (
                Arc::new(
                    CompetingRisks::new(vec![
                        Arc::new(Weibull3::two_param(100.0, 2.0).unwrap()) as _,
                        Arc::new(Exponential::new(0.001).unwrap()) as _,
                    ])
                    .unwrap(),
                ),
                "competing",
            ),
        ];
        for (d, want) in cases {
            assert_eq!(SampleKernel::lower(&d).variant_name(), want);
        }
    }

    #[test]
    fn mixture_lowers_children_recursively() {
        let nested: Arc<dyn LifeDistribution> = Arc::new(
            Mixture::new(vec![
                (0.5, Arc::new(Degenerate::new(10.0).unwrap()) as _),
                (0.5, Arc::new(Weibull3::two_param(50.0, 1.5).unwrap()) as _),
            ])
            .unwrap(),
        );
        match SampleKernel::lower(&nested) {
            SampleKernel::Mixture { components, .. } => {
                assert_eq!(components[0].1.variant_name(), "degenerate");
                assert_eq!(components[1].1.variant_name(), "weibull3");
            }
            other => panic!("expected mixture, got {}", other.variant_name()),
        }
    }

    #[test]
    fn degenerate_kernel_consumes_no_draws() {
        let (_, k) = lowered(Arc::new(Degenerate::new(42.0).unwrap()));
        let mut a = stream(1, 0);
        let mut b = stream(1, 0);
        assert_eq!(k.sample(&mut a), 42.0);
        assert_eq!(k.sample_conditional(40.0, &mut a), 2.0);
        // The RNG state is untouched: both streams still agree.
        assert_eq!(rng_f64(&mut a), rng_f64(&mut b));
    }

    #[test]
    fn boxed_fallback_matches_dyn_exactly() {
        /// A family the lowering table does not know.
        #[derive(Debug)]
        struct Shifted(Exponential);
        impl LifeDistribution for Shifted {
            fn cdf(&self, t: f64) -> f64 {
                self.0.cdf(t - 5.0)
            }
            fn pdf(&self, t: f64) -> f64 {
                self.0.pdf(t - 5.0)
            }
            fn quantile(&self, p: f64) -> f64 {
                5.0 + self.0.quantile(p)
            }
            fn mean(&self) -> f64 {
                5.0 + self.0.mean()
            }
        }
        let d: Arc<dyn LifeDistribution> = Arc::new(Shifted(Exponential::new(0.01).unwrap()));
        let k = SampleKernel::lower(&d);
        assert_eq!(k.variant_name(), "boxed");
        let mut a = stream(9, 3);
        let mut b = stream(9, 3);
        for _ in 0..64 {
            assert_eq!(k.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
            assert_eq!(
                k.sample_conditional(7.0, &mut a).to_bits(),
                d.sample_conditional(7.0, &mut b).to_bits()
            );
        }
    }
}
