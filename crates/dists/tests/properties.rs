//! Property-based tests for the distribution substrate.
//!
//! Every [`LifeDistribution`] implementation must satisfy the reliability
//! identities documented on the trait. These tests generate random
//! parameters and check the identities across the support.

use proptest::prelude::*;
use raidsim_dists::{CompetingRisks, Exponential, LifeDistribution, Mixture, Weibull3};
use std::sync::Arc;

/// Strategy over valid three-parameter Weibull parameters in the ranges
/// the paper uses (locations up to a day, scales from hours to decades,
/// shapes from strong infant mortality to steep wear-out).
fn weibull_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0..48.0f64, 1.0..1.0e6f64, 0.3..5.0f64)
}

fn times() -> impl Strategy<Value = f64> {
    0.0..2.0e6f64
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_bounded(
        (g, e, b) in weibull_params(),
        t1 in times(),
        t2 in times(),
    ) {
        let d = Weibull3::new(g, e, b).unwrap();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let (f_lo, f_hi) = (d.cdf(lo), d.cdf(hi));
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
        prop_assert!(f_lo <= f_hi + 1e-12);
    }

    #[test]
    fn sf_complements_cdf((g, e, b) in weibull_params(), t in times()) {
        let d = Weibull3::new(g, e, b).unwrap();
        prop_assert!((d.sf(t) + d.cdf(t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf((g, e, b) in weibull_params(), p in 1e-6..0.999_999f64) {
        let d = Weibull3::new(g, e, b).unwrap();
        let t = d.quantile(p);
        prop_assert!((d.cdf(t) - p).abs() < 1e-7, "p = {p}, F(q(p)) = {}", d.cdf(t));
    }

    #[test]
    fn cum_hazard_is_neg_log_sf((g, e, b) in weibull_params(), t in times()) {
        let d = Weibull3::new(g, e, b).unwrap();
        let s = d.sf(t);
        if s > 1e-300 {
            prop_assert!((d.cum_hazard(t) + s.ln()).abs() < 1e-7 * d.cum_hazard(t).max(1.0));
        }
    }

    #[test]
    fn hazard_is_pdf_over_sf((g, e, b) in weibull_params(), t in times()) {
        let d = Weibull3::new(g, e, b).unwrap();
        let s = d.sf(t);
        // Skip the far tail and the support boundary where both sides
        // degenerate.
        if s > 1e-12 && t > g + 1e-9 {
            let lhs = d.hazard(t);
            let rhs = d.pdf(t) / s;
            prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1e-12));
        }
    }

    #[test]
    fn samples_lie_in_support((g, e, b) in weibull_params(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let d = Weibull3::new(g, e, b).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= g);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn all_samplers_produce_finite_times(
        (g1, e1, b1) in weibull_params(),
        (g2, e2, b2) in weibull_params(),
        mean in 1.0..1.0e6f64,
        w in 0.01..0.99f64,
        seed in any::<u64>(),
    ) {
        // The NaN-safety contract enforced by `cargo xtask check`
        // assumes every sampler yields finite times for valid
        // parameters; this is the generative side of that contract.
        use rand::SeedableRng;
        let wa = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let wb = Arc::new(Weibull3::new(g2, e2, b2).unwrap());
        let samplers: Vec<Arc<dyn LifeDistribution>> = vec![
            wa.clone() as _,
            Arc::new(Exponential::from_mean(mean).unwrap()) as _,
            Arc::new(Mixture::new(vec![(w, wa.clone() as _), (1.0 - w, wb.clone() as _)]).unwrap()) as _,
            Arc::new(CompetingRisks::new(vec![wa as _, wb as _]).unwrap()) as _,
        ];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for d in &samplers {
            for _ in 0..32 {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite(), "non-finite sample {} from {:?}", x, d);
            }
        }
    }

    #[test]
    fn exponential_matches_weibull_beta_one(mean in 1.0..1.0e6f64, t in times()) {
        let e = Exponential::from_mean(mean).unwrap();
        let w = Weibull3::two_param(mean, 1.0).unwrap();
        prop_assert!((e.cdf(t) - w.cdf(t)).abs() < 1e-9);
    }

    #[test]
    fn mixture_cdf_between_component_cdfs(
        (g1, e1, b1) in weibull_params(),
        (g2, e2, b2) in weibull_params(),
        w in 0.01..0.99f64,
        t in times(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Weibull3::new(g2, e2, b2).unwrap());
        let (fa, fb) = (a.cdf(t), b.cdf(t));
        let m = Mixture::new(vec![(w, a as _), (1.0 - w, b as _)]).unwrap();
        let fm = m.cdf(t);
        prop_assert!(fm >= fa.min(fb) - 1e-12);
        prop_assert!(fm <= fa.max(fb) + 1e-12);
    }

    #[test]
    fn competing_risks_fail_earlier_than_components(
        (g1, e1, b1) in weibull_params(),
        (g2, e2, b2) in weibull_params(),
        t in times(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Weibull3::new(g2, e2, b2).unwrap());
        let (fa, fb) = (a.cdf(t), b.cdf(t));
        let c = CompetingRisks::new(vec![a as _, b as _]).unwrap();
        // The minimum of two lifetimes is stochastically smaller than
        // either: F_min(t) >= max(F_a(t), F_b(t)).
        prop_assert!(c.cdf(t) >= fa.max(fb) - 1e-12);
    }

    #[test]
    fn conditional_sampling_is_consistent_with_cdf(
        (g, e, b) in weibull_params(),
        frac in 0.1..0.9f64,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        // P(T <= t0 + x | T > t0) computed empirically must match the
        // analytic conditional CDF.
        let d = Weibull3::new(g, e, b).unwrap();
        let t0 = d.quantile(frac);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = d.quantile(0.5 + frac / 2.0) - t0; // a point beyond t0
        let n = 512;
        let hits = (0..n)
            .filter(|_| d.sample_conditional(t0, &mut rng) <= x)
            .count() as f64 / n as f64;
        let analytic = (d.cdf(t0 + x) - d.cdf(t0)) / d.sf(t0);
        // Binomial noise at n = 512: allow 4 sigma.
        let sigma = (analytic * (1.0 - analytic) / n as f64).sqrt();
        prop_assert!((hits - analytic).abs() < 4.0 * sigma + 1e-3,
            "empirical {hits}, analytic {analytic}");
    }

    #[test]
    fn median_ranks_are_sorted_and_in_unit_interval(
        mut ts in proptest::collection::vec(0.1..1e6f64, 2..200),
    ) {
        use raidsim_dists::empirical::median_ranks;
        ts.dedup();
        let pts = median_ranks(&ts);
        for w in pts.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
            prop_assert!(w[0].prob < w[1].prob);
        }
        for p in &pts {
            prop_assert!(p.prob > 0.0 && p.prob < 1.0);
        }
    }

    #[test]
    fn kaplan_meier_is_nonincreasing(
        ts in proptest::collection::vec((0.1..1e5f64, any::<bool>()), 1..200),
    ) {
        use raidsim_dists::empirical::{kaplan_meier, Observation};
        let obs: Vec<Observation> = ts
            .iter()
            .map(|&(t, f)| Observation { time: t, failed: f })
            .collect();
        let km = kaplan_meier(&obs);
        for w in km.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        for (_, s) in &km {
            prop_assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn mle_recovers_shape_direction(beta in 0.5..3.0f64, seed in any::<u64>()) {
        use rand::SeedableRng;
        use raidsim_dists::empirical::Observation;
        use raidsim_dists::fit::mle;
        // With 400 exact observations the MLE must at least classify the
        // hazard correctly (decreasing / increasing), the distinction the
        // whole paper turns on.
        prop_assume!((beta - 1.0).abs() > 0.25);
        let truth = Weibull3::two_param(1000.0, beta).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<Observation> = (0..400)
            .map(|_| Observation::failure(truth.sample(&mut rng)))
            .collect();
        let fit = mle(&data).unwrap();
        prop_assert_eq!(fit.beta > 1.0, beta > 1.0,
            "beta_hat = {}, truth = {}", fit.beta, beta);
    }
}
