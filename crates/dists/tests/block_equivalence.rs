//! Bit-equality property tests between the block-draw kernels and the
//! scalar sampling loops they replace.
//!
//! The contract (documented on `SampleKernel` and in DESIGN.md §18) is
//! that under [`MathMode::Exact`] every `*_block` method consumes
//! exactly the same RNG words and produces bit-identical `f64`s as the
//! corresponding scalar method called once per element — for **every**
//! kernel variant, including the composite and boxed fallbacks and the
//! tilted/forced importance-sampling draws (whose accumulated
//! log-weights must also match to the bit, which pins the summation
//! order). [`MathMode::Fast`] is exercised separately with an explicit
//! tolerance: per-draw relative error below `1e-12` against the exact
//! path, with the `powf`-specializable shapes (`1/β ∈ {0.5, 1, 2}`)
//! covered deliberately.

use proptest::prelude::*;
use raidsim_dists::kernel::{Forcing, MathMode, Tilt};
use raidsim_dists::{
    CompetingRisks, Degenerate, Exponential, LifeDistribution, Lognormal, Mixture, SampleKernel,
    Weibull3,
};
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const BLOCK: usize = 48;

/// Runs every block method against its scalar loop on paired streams,
/// asserting bit-equality of draws and log-weights plus final RNG
/// lockstep.
fn assert_block_bit_identical(dist: &Arc<dyn LifeDistribution>, seed: u64, fracs: &[f64]) {
    let kernel = SampleKernel::lower(dist);
    let t0s: Vec<f64> = fracs.iter().map(|&f| dist.quantile(f)).collect();
    let tilt = Tilt::new(0.35).unwrap();
    let forcing = Forcing::new(0.3).unwrap();
    let mut rng_scalar = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rng_block = rand::rngs::StdRng::seed_from_u64(seed);
    let mut block = [0.0f64; BLOCK];
    let check = |label: &str, scalar: &[f64], block: &[f64]| {
        for (i, (a, b)) in scalar.iter().zip(block).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label} #{i} diverged for {kernel:?}: scalar {a}, block {b}"
            );
        }
    };

    // Unconditional.
    let scalar: Vec<f64> = (0..BLOCK).map(|_| kernel.sample(&mut rng_scalar)).collect();
    kernel.sample_block(MathMode::Exact, &mut rng_block, &mut block);
    check("sample", &scalar, &block);

    // Conditional, at several survival ages.
    for &t0 in &t0s {
        let scalar: Vec<f64> = (0..BLOCK)
            .map(|_| kernel.sample_conditional(t0, &mut rng_scalar))
            .collect();
        kernel.sample_conditional_block(MathMode::Exact, t0, &mut rng_block, &mut block);
        check("sample_conditional", &scalar, &block);
    }

    // Tilted: draws and the accumulated log-weight must both match.
    let mut lw_scalar = 0.25f64;
    let mut lw_block = 0.25f64;
    let scalar: Vec<f64> = (0..BLOCK)
        .map(|_| kernel.sample_tilted(tilt, &mut lw_scalar, &mut rng_scalar))
        .collect();
    kernel.sample_tilted_block(
        MathMode::Exact,
        tilt,
        &mut lw_block,
        &mut rng_block,
        &mut block,
    );
    check("sample_tilted", &scalar, &block);
    assert_eq!(
        lw_scalar.to_bits(),
        lw_block.to_bits(),
        "tilted log-weight diverged for {kernel:?}: scalar {lw_scalar}, block {lw_block}"
    );

    // Conditional tilted.
    for &t0 in &t0s {
        let scalar: Vec<f64> = (0..BLOCK)
            .map(|_| kernel.sample_conditional_tilted(t0, tilt, &mut lw_scalar, &mut rng_scalar))
            .collect();
        kernel.sample_conditional_tilted_block(
            MathMode::Exact,
            t0,
            tilt,
            &mut lw_block,
            &mut rng_block,
            &mut block,
        );
        check("sample_conditional_tilted", &scalar, &block);
        assert_eq!(lw_scalar.to_bits(), lw_block.to_bits());
    }

    // Forced conditional, windows derived from the distribution scale.
    let window = (dist.quantile(0.6) - dist.quantile(0.2)).max(1.0);
    for &t0 in &t0s {
        let scalar: Vec<f64> = (0..BLOCK)
            .map(|_| {
                kernel.sample_conditional_forced(
                    t0,
                    window,
                    forcing,
                    &mut lw_scalar,
                    &mut rng_scalar,
                )
            })
            .collect();
        kernel.sample_conditional_forced_block(
            MathMode::Exact,
            t0,
            window,
            forcing,
            &mut lw_block,
            &mut rng_block,
            &mut block,
        );
        check("sample_conditional_forced", &scalar, &block);
        assert_eq!(lw_scalar.to_bits(), lw_block.to_bits());
    }

    // Lockstep: both streams must have consumed the same word count.
    assert_eq!(
        rng_scalar.next_u64(),
        rng_block.next_u64(),
        "rng streams fell out of lockstep for {kernel:?}"
    );
}

fn weibull_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0..48.0f64, 1.0..1.0e6f64, 0.3..5.0f64)
}

fn t0_fracs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..0.9f64, 4)
}

/// A distribution with no `lower_kernel` override: exercises the
/// `Boxed` scalar fallback inside every block method.
#[derive(Debug)]
struct Shifted(Exponential, f64);

impl LifeDistribution for Shifted {
    fn cdf(&self, t: f64) -> f64 {
        self.0.cdf(t - self.1)
    }
    fn pdf(&self, t: f64) -> f64 {
        self.0.pdf(t - self.1)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.1 + self.0.quantile(p)
    }
    fn mean(&self) -> f64 {
        self.1 + self.0.mean()
    }
}

proptest! {
    #[test]
    fn weibull_blocks_are_bit_identical(
        (g, e, b) in weibull_params(),
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(g, e, b).unwrap());
        assert_block_bit_identical(&d, seed, &fracs);
    }

    #[test]
    fn exponential_blocks_are_bit_identical(
        mean in 1.0..1.0e6f64,
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Exponential::from_mean(mean).unwrap());
        assert_block_bit_identical(&d, seed, &fracs);
    }

    #[test]
    fn lognormal_blocks_are_bit_identical(
        g in 0.0..48.0f64,
        mu in -2.0..12.0f64,
        sigma in 0.05..2.5f64,
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Lognormal::new(g, mu, sigma).unwrap());
        assert_block_bit_identical(&d, seed, &fracs);
    }

    #[test]
    fn degenerate_blocks_are_bit_identical(
        v in 0.0..1.0e5f64,
        seed in any::<u64>(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Degenerate::new(v).unwrap());
        // Degenerate has no interior quantiles; condition at the point
        // of support and below.
        let kernel = SampleKernel::lower(&d);
        prop_assert_eq!(kernel.words_per_sample(), Some(0));
        assert_block_bit_identical(&d, seed, &[]);
    }

    #[test]
    fn mixture_blocks_are_bit_identical(
        (g1, e1, b1) in weibull_params(),
        mean in 1.0..1.0e6f64,
        w in 0.01..0.99f64,
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Exponential::from_mean(mean).unwrap());
        let d: Arc<dyn LifeDistribution> =
            Arc::new(Mixture::new(vec![(w, a as _), (1.0 - w, b as _)]).unwrap());
        prop_assert_eq!(SampleKernel::lower(&d).words_per_sample(), None);
        assert_block_bit_identical(&d, seed, &fracs);
    }

    #[test]
    fn competing_blocks_are_bit_identical(
        (g1, e1, b1) in weibull_params(),
        (g2, e2, b2) in weibull_params(),
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Weibull3::new(g2, e2, b2).unwrap());
        let d: Arc<dyn LifeDistribution> =
            Arc::new(CompetingRisks::new(vec![a as _, b as _]).unwrap());
        assert_block_bit_identical(&d, seed, &fracs);
    }

    #[test]
    fn boxed_blocks_are_bit_identical(
        mean in 1.0..1.0e6f64,
        shift in 0.0..100.0f64,
        seed in any::<u64>(),
        fracs in t0_fracs(),
    ) {
        let d: Arc<dyn LifeDistribution> =
            Arc::new(Shifted(Exponential::from_mean(mean).unwrap(), shift));
        prop_assert!(matches!(SampleKernel::lower(&d), SampleKernel::Boxed { .. }));
        assert_block_bit_identical(&d, seed, &fracs);
    }

    /// Fast math may reorder float ops but must stay within the
    /// documented per-draw tolerance of the exact path — and must
    /// consume exactly the same RNG words.
    #[test]
    fn fast_math_blocks_stay_within_tolerance(
        // β ∈ {0.5, 1, 2} hit the specialized powf exponents 2, 1 and
        // 0.5; the free range covers the generic fallback.
        beta in prop_oneof![Just(0.5f64), Just(1.0f64), Just(2.0f64), 0.3..5.0f64],
        eta in 1.0..1.0e6f64,
        gamma in 0.0..48.0f64,
        seed in any::<u64>(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(gamma, eta, beta).unwrap());
        let kernel = SampleKernel::lower(&d);
        let mut rng_exact = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_fast = rand::rngs::StdRng::seed_from_u64(seed);
        let mut exact = [0.0f64; BLOCK];
        let mut fast = [0.0f64; BLOCK];
        kernel.sample_block(MathMode::Exact, &mut rng_exact, &mut exact);
        kernel.sample_block(MathMode::Fast, &mut rng_fast, &mut fast);
        for (i, (a, b)) in exact.iter().zip(&fast).enumerate() {
            let denom = a.abs().max(1e-300);
            let rel = (a - b).abs() / denom;
            prop_assert!(
                rel < 1e-12,
                "draw #{} rel error {} exceeds fast-math tolerance (exact {}, fast {})",
                i, rel, a, b
            );
        }
        prop_assert_eq!(rng_exact.next_u64(), rng_fast.next_u64());
    }

    /// The specializable exponents are *exactly* equal under fast math
    /// when the rewrite is value-preserving (`powf(x, 1.0) == x`), and
    /// within one ulp-scale tolerance for sqrt/square.
    #[test]
    fn fast_math_identity_exponent_is_bit_identical(
        eta in 1.0..1.0e6f64,
        gamma in 0.0..48.0f64,
        seed in any::<u64>(),
    ) {
        // β = 1: inv_beta = 1.0, powf_mode returns x unchanged and the
        // surrounding op sequence is untouched — bit-identical.
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(gamma, eta, 1.0).unwrap());
        let kernel = SampleKernel::lower(&d);
        let mut rng_exact = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rng_fast = rand::rngs::StdRng::seed_from_u64(seed);
        let mut exact = [0.0f64; BLOCK];
        let mut fast = [0.0f64; BLOCK];
        kernel.sample_block(MathMode::Exact, &mut rng_exact, &mut exact);
        kernel.sample_block(MathMode::Fast, &mut rng_fast, &mut fast);
        for (a, b) in exact.iter().zip(&fast) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
