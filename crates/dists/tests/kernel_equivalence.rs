//! Bit-equality property tests between [`SampleKernel`] and the `dyn`
//! sampling path.
//!
//! The monomorphic kernels exist purely as a performance optimisation; the
//! contract (documented on `LifeDistribution::lower_kernel`) is that every
//! lowered kernel reproduces the `dyn` path **bit for bit** — same draws
//! from the same RNG stream, same IEEE-754 result for both unconditional
//! and conditional sampling. These tests drive every variant (including the
//! `Boxed` fallback and nested composites) over random parameters and
//! random 64-bit seeds, asserting `to_bits` equality on paired streams.

use proptest::prelude::*;
use raidsim_dists::{
    CompetingRisks, Degenerate, Exponential, LifeDistribution, Lognormal, Mixture, SampleKernel,
    Weibull3,
};
use rand::SeedableRng;
use std::sync::Arc;

/// Paired-stream check: the kernel and the dyn object each consume an
/// identical, independently-seeded RNG; every sample must match to the bit
/// and both streams must stay in lockstep (same number of draws).
fn assert_bit_identical(dist: &Arc<dyn LifeDistribution>, seed: u64, fracs: &[f64]) {
    // Condition at quantile-derived ages so `cdf(t0) + u * sf(t0)` stays
    // strictly below 1 (the trait default asserts on p == 1.0, which raw
    // tail ages can hit through rounding — on the dyn path and kernel
    // path alike).
    let t0s: Vec<f64> = fracs.iter().map(|&f| dist.quantile(f)).collect();
    let kernel = SampleKernel::lower(dist);
    let mut rng_dyn = rand::rngs::StdRng::seed_from_u64(seed);
    let mut rng_ker = rand::rngs::StdRng::seed_from_u64(seed);
    for i in 0..64 {
        let a = dist.sample(&mut rng_dyn);
        let b = kernel.sample(&mut rng_ker);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "sample #{i} diverged for {kernel:?}: dyn {a}, kernel {b}"
        );
    }
    for (i, &t0) in t0s.iter().enumerate() {
        let a = dist.sample_conditional(t0, &mut rng_dyn);
        let b = kernel.sample_conditional(t0, &mut rng_ker);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "conditional sample #{i} at t0 = {t0} diverged for {kernel:?}: dyn {a}, kernel {b}"
        );
    }
    // Lockstep: interleave once more to prove neither path consumed a
    // different number of words from the underlying stream.
    use rand::Rng;
    assert_eq!(
        rng_dyn.next_u64(),
        rng_ker.next_u64(),
        "rng streams fell out of lockstep for {kernel:?}"
    );
}

fn weibull_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.0..48.0f64, 1.0..1.0e6f64, 0.3..5.0f64)
}

fn t0s() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..0.9f64, 8)
}

/// A distribution with no `lower_kernel` override: exercises the `Boxed`
/// fallback inside composites as well as standalone.
#[derive(Debug)]
struct Shifted(Exponential, f64);

impl LifeDistribution for Shifted {
    fn cdf(&self, t: f64) -> f64 {
        self.0.cdf(t - self.1)
    }
    fn pdf(&self, t: f64) -> f64 {
        self.0.pdf(t - self.1)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.1 + self.0.quantile(p)
    }
    fn mean(&self) -> f64 {
        self.1 + self.0.mean()
    }
}

proptest! {
    #[test]
    fn weibull_kernel_is_bit_identical(
        (g, e, b) in weibull_params(),
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Weibull3::new(g, e, b).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn exponential_kernel_is_bit_identical(
        mean in 1.0..1.0e6f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Exponential::from_mean(mean).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn lognormal_kernel_is_bit_identical(
        g in 0.0..48.0f64,
        mu in -2.0..12.0f64,
        sigma in 0.05..2.5f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Lognormal::new(g, mu, sigma).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn degenerate_kernel_is_bit_identical(
        v in 0.0..1.0e5f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let d: Arc<dyn LifeDistribution> = Arc::new(Degenerate::new(v).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn mixture_kernel_is_bit_identical(
        (g1, e1, b1) in weibull_params(),
        mean in 1.0..1.0e6f64,
        w in 0.01..0.99f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Exponential::from_mean(mean).unwrap());
        let d: Arc<dyn LifeDistribution> =
            Arc::new(Mixture::new(vec![(w, a as _), (1.0 - w, b as _)]).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn competing_kernel_is_bit_identical(
        (g1, e1, b1) in weibull_params(),
        (g2, e2, b2) in weibull_params(),
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let a = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let b = Arc::new(Weibull3::new(g2, e2, b2).unwrap());
        let d: Arc<dyn LifeDistribution> =
            Arc::new(CompetingRisks::new(vec![a as _, b as _]).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn boxed_fallback_is_bit_identical(
        mean in 1.0..1.0e6f64,
        shift in 0.0..100.0f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        let d: Arc<dyn LifeDistribution> =
            Arc::new(Shifted(Exponential::from_mean(mean).unwrap(), shift));
        prop_assert!(matches!(SampleKernel::lower(&d), SampleKernel::Boxed { .. }));
        assert_bit_identical(&d, seed, &t0s);
    }

    #[test]
    fn nested_composites_are_bit_identical(
        (g1, e1, b1) in weibull_params(),
        mean in 1.0..1.0e6f64,
        shift in 0.0..100.0f64,
        w in 0.01..0.99f64,
        seed in any::<u64>(),
        t0s in t0s(),
    ) {
        // Mixture of (competing risks, boxed-fallback) — exercises
        // recursive lowering plus conditional delegation to `source`.
        let wb = Arc::new(Weibull3::new(g1, e1, b1).unwrap());
        let ex = Arc::new(Exponential::from_mean(mean).unwrap());
        let comp = Arc::new(CompetingRisks::new(vec![wb as _, ex as _]).unwrap());
        let odd = Arc::new(Shifted(Exponential::from_mean(mean).unwrap(), shift));
        let d: Arc<dyn LifeDistribution> =
            Arc::new(Mixture::new(vec![(w, comp as _), (1.0 - w, odd as _)]).unwrap());
        assert_bit_identical(&d, seed, &t0s);
    }
}
