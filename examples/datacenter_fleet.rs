//! Datacenter fleet planning: choose a RAID group size and scrub
//! cadence for a fleet of 500 GB SATA drives.
//!
//! This is the workload the paper's introduction motivates: an
//! architect must trade capacity efficiency (bigger groups, fewer
//! parity drives) against data-loss risk, with the restore-time floor
//! derived from real bus bandwidth rather than an assumed constant
//! repair rate.
//!
//! ```sh
//! cargo run --release -p raidsim --example datacenter_fleet
//! ```

use raidsim::config::{params, RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim::dists::Weibull3;
use raidsim::hdd::restore::RestoreModel;
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use std::sync::Arc;

const FLEET_GROUPS: f64 = 5_000.0; // a mid-size filer installation

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let drive = raidsim::hdd::DriveSpec::paper_sata();
    let threads = std::thread::available_parallelism()?.get();

    println!(
        "Fleet study: 4/8/14 drives per group candidates, drive = {} on {}",
        drive.model(),
        drive.interface()
    );
    println!(
        "{:>8} {:>12} {:>16} {:>22} {:>22}",
        "drives", "scrub (h)", "min restore (h)", "loss events/10yr", "per-PB-decade"
    );

    for &group_size in &[4usize, 8, 14] {
        // Physical restore floor for this group size: every survivor is
        // read over the shared 1.5 Gb/s bus.
        let restore_model = RestoreModel {
            group_size,
            foreground_io: 0.3, // serving production traffic meanwhile
            ..RestoreModel::paper_base_case()
        };
        let ttr = restore_model.weibull_for(&drive)?;
        let min_restore = ttr.location();

        for &scrub_eta in &[48.0, 168.0] {
            let dists = TransitionDistributions {
                ttop: Arc::new(Weibull3::new(
                    params::TTOP_GAMMA,
                    params::TTOP_ETA,
                    params::TTOP_BETA,
                )?),
                ttr: Arc::new(ttr),
                ttld: Some(Arc::new(Weibull3::two_param(
                    params::TTLD_ETA,
                    params::TTLD_BETA,
                )?)),
                ttscrub: ScrubPolicy::with_characteristic_hours(scrub_eta)
                    .distribution()?
                    .map(Arc::from),
            };
            let cfg = RaidGroupConfig {
                drives: group_size,
                redundancy: Redundancy::SingleParity,
                mission_hours: params::MISSION_HOURS,
                dists,
                defect_reset_on_replacement: false,
                spares: raidsim::config::SparePolicy::AlwaysAvailable,
            };
            let result = Simulator::new(cfg).run_parallel(2_000, 7, threads);
            let per_fleet = result.ddfs_per_thousand_groups() * FLEET_GROUPS / 1_000.0;
            // Normalize by stored capacity: (group_size - 1) data
            // drives x 0.5 TB over a decade.
            let pb_decades = FLEET_GROUPS * (group_size - 1) as f64 * 0.5 / 1_000.0;
            println!(
                "{:>8} {:>12.0} {:>16.1} {:>22.1} {:>22.2}",
                group_size,
                scrub_eta,
                min_restore,
                per_fleet,
                per_fleet / pb_decades
            );
        }
    }

    println!();
    println!(
        "Reading: bigger groups expose more drives to each latent defect \
         and lengthen the restore floor, compounding the risk; weekly \
         scrubs give up roughly the difference between the 48 h and 168 h \
         rows."
    );
    Ok(())
}
