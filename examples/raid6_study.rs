//! RAID 5 vs RAID 6: is double parity required?
//!
//! The paper's conclusion: "It appears that, eventually, RAID 6 will be
//! required to meet high reliability requirements." This example runs
//! the base-case model at both redundancy levels across scrub policies
//! and shows when single parity stops being defensible.
//!
//! ```sh
//! cargo run --release -p raidsim --example raid6_study
//! ```

use raidsim::config::{RaidGroupConfig, Redundancy};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()?.get();
    let groups = 3_000;

    println!("Data-loss events per 1,000 groups over 10 years, 8-drive groups");
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "scrub policy", "RAID 5 (N+1)", "RAID 6 (N+2)", "improvement"
    );

    let policies: [(&str, ScrubPolicy); 4] = [
        ("none", ScrubPolicy::Disabled),
        ("336 h", ScrubPolicy::with_characteristic_hours(336.0)),
        ("168 h", ScrubPolicy::with_characteristic_hours(168.0)),
        ("12 h", ScrubPolicy::with_characteristic_hours(12.0)),
    ];

    for (i, (label, policy)) in policies.iter().enumerate() {
        let raid5 = RaidGroupConfig::paper_base_case()?.with_scrub_policy(*policy)?;
        let raid6 = RaidGroupConfig {
            redundancy: Redundancy::DoubleParity,
            ..RaidGroupConfig::paper_base_case()?
        }
        .with_scrub_policy(*policy)?;

        let seed = 4_000 + i as u64;
        let r5 = Simulator::new(raid5)
            .run_parallel(groups, seed, threads)
            .ddfs_per_thousand_groups();
        let r6 = Simulator::new(raid6)
            .run_parallel(groups, seed, threads)
            .ddfs_per_thousand_groups();
        let improvement = if r6 > 0.0 {
            format!("{:.0}x", r5 / r6)
        } else {
            format!(">{:.0}x", r5 * groups as f64 / 1_000.0)
        };
        println!("{label:>16} {r5:>14.1} {r6:>14.2} {improvement:>12}");
    }

    println!();
    println!(
        "Reading: without scrubbing even RAID 6 carries real risk, because \
         defects accumulate on two drives at once; with any reasonable \
         scrub cadence RAID 6 pushes loss rates back below the level \
         MTTDL (wrongly) promised for RAID 5."
    );
    Ok(())
}
