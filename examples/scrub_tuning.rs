//! Scrub tuning: cadence sweep plus the per-defect-clock vs
//! periodic-pass semantics ablation.
//!
//! "Short scrub durations can improve reliability, but at some point
//! the extensive scrubbing required to support the high-capacity HDDs
//! will unacceptably impact performance" (paper Section 8). This
//! example sweeps the scrub characteristic time, derives the physical
//! floor from the drive's bandwidth budget, and compares the paper's
//! per-defect Weibull exposure clock with the periodic fleet-pass
//! semantics real filers implement.
//!
//! ```sh
//! cargo run --release -p raidsim --example scrub_tuning
//! ```

use raidsim::config::RaidGroupConfig;
use raidsim::hdd::scrub::{minimum_scrub_hours, ScrubPolicy};
use raidsim::hdd::DriveSpec;
use raidsim::run::Simulator;
use raidsim::workloads::scrub_schedule::PeriodicScrub;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()?.get();
    let drive = DriveSpec::paper_sata();
    let groups = 3_000;

    // Physical floor: scrubbing at 5% of drive bandwidth.
    let floor = minimum_scrub_hours(&drive, 0.05);
    println!(
        "Drive {}: one full scrub pass at 5% bandwidth takes {floor:.0} h",
        drive.model()
    );
    println!();
    println!("Loss events per 1,000 groups / 10 yr vs scrub cadence:");
    println!(
        "{:>12} {:>22} {:>22}",
        "eta (h)", "Weibull clock (paper)", "periodic pass"
    );

    for (i, &eta) in [12.0f64, 48.0, 168.0, 336.0, 720.0].iter().enumerate() {
        let seed = 6_000 + i as u64;

        // Paper semantics: per-defect Weibull(6, eta, 3) exposure.
        let weibull_cfg = RaidGroupConfig::paper_base_case()?
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))?;
        let w = Simulator::new(weibull_cfg)
            .run_parallel(groups, seed, threads)
            .ddfs_per_thousand_groups();

        // Real-filer semantics: a pass every `eta` hours, taking the
        // physical floor time, defect exposure uniform over the cycle.
        let mut periodic_cfg = RaidGroupConfig::paper_base_case()?;
        periodic_cfg.dists.ttscrub = Some(Arc::new(PeriodicScrub::new(eta, floor.min(eta))?));
        let p = Simulator::new(periodic_cfg)
            .run_parallel(groups, seed, threads)
            .ddfs_per_thousand_groups();

        println!("{eta:>12.0} {w:>22.1} {p:>22.1}");
    }

    println!();
    println!(
        "Reading: loss risk scales close to linearly with mean defect \
         exposure, so the semantic choice matters only through its mean \
         — the paper's Weibull(6, eta, 3) clock (mean ~ 6 + 0.9 eta) is \
         slightly more pessimistic than a periodic pass of the same \
         cadence (mean ~ pass + eta/2)."
    );
    Ok(())
}
