//! Quickstart: simulate the paper's base-case RAID group and compare
//! against the MTTDL prediction.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p raidsim --example quickstart
//! ```

use raidsim::config::{params, RaidGroupConfig};
use raidsim::mttdl;
use raidsim::run::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The classical answer -------------------------------------
    // MTBF = 461,386 h, MTTR = 12 h, N = 7 data drives: the paper's
    // equation 3 worked example.
    let eq3 = mttdl::equation3_example();
    println!("MTTDL (eq. 2): {:.0} years", eq3.mttdl_years);
    println!(
        "MTTDL-predicted data-loss events, 1,000 groups x 10 years: {:.2}",
        eq3.expected_ddfs
    );

    // --- 2. The paper's model ----------------------------------------
    // 8 drives per group, Weibull failures/restores, latent defects at
    // the Table 1 medium rate, one-week background scrub.
    let cfg = RaidGroupConfig::paper_base_case()?;
    let groups = 2_000;
    let threads = std::thread::available_parallelism()?.get();
    let result = Simulator::new(cfg).run_parallel(groups, 42, threads);

    println!();
    println!("Simulated {groups} RAID groups for 10 years each:");
    println!(
        "  data-loss events per 1,000 groups: {:.1}",
        result.ddfs_per_thousand_groups()
    );
    let (op_op, latent_op) = result.kind_counts();
    println!("  from two simultaneous drive failures: {op_op}");
    println!("  from a latent defect + a drive failure: {latent_op}");
    println!(
        "  operational failures per group: {:.2}",
        result.total_op_failures() as f64 / groups as f64
    );
    println!(
        "  latent defects created per group: {:.1}",
        result.total_latent_defects() as f64 / groups as f64
    );

    // --- 3. The headline ----------------------------------------------
    let ratio = result.ddfs_per_thousand_groups() / eq3.expected_ddfs;
    println!();
    println!("The model predicts {ratio:.0}x as many data-loss events as MTTDL.");
    println!(
        "(The paper reports ratios from 2x with no latent defects to >2,500x \
         with latent defects and no scrubbing.)"
    );

    // Mission constants are exported for downstream use:
    assert_eq!(params::MISSION_HOURS, 87_600.0);
    Ok(())
}
