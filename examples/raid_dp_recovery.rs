//! RAID-DP mechanics: encode a stripe, lose two drives, get every byte
//! back — the machinery behind the paper's closing recommendation that
//! "eventually, RAID 6 will be required".
//!
//! Also quantifies the stripe-collision event the reliability model
//! leaves out (paper Section 4.2).
//!
//! ```sh
//! cargo run --release -p raidsim --example raid_dp_recovery
//! ```

use bytes::Bytes;
use raidsim::dists::rng::stream;
use raidsim::geometry::collision::CollisionModel;
use raidsim::geometry::{Raid5Layout, RowDiagonalParity};
use rand::RngExt as _;

fn main() {
    // --- 1. Single parity: one loss fine, two losses fatal -----------
    let layout = Raid5Layout::new(8);
    println!(
        "RAID 5, 8 drives: parity rotates (stripe 0 -> drive {}, stripe 1 -> drive {})",
        layout.parity_drive(0),
        layout.parity_drive(1)
    );

    // --- 2. Double parity: RDP with p = 7 (6 data + 2 parity) --------
    let rdp = RowDiagonalParity::new(7);
    println!(
        "RAID-DP (RDP, p=7): {} data disks + row parity + diagonal parity, {} rows/stripe",
        rdp.data_disks(),
        rdp.rows()
    );

    let mut rng = stream(2026, 0);
    let data: Vec<Vec<Bytes>> = (0..rdp.data_disks())
        .map(|_| {
            (0..rdp.rows())
                .map(|_| {
                    let mut v = vec![0u8; 4096];
                    rng.fill(&mut v[..]);
                    Bytes::from(v)
                })
                .collect()
        })
        .collect();
    let encoded = rdp.encode(&data);

    // Kill two arbitrary disks — say data disk 1 and the row-parity
    // disk — and reconstruct.
    let mut disks: Vec<Option<Vec<Bytes>>> = encoded.iter().cloned().map(Some).collect();
    disks[1] = None;
    disks[rdp.row_parity_disk()] = None;
    rdp.recover(&mut disks).expect("double loss is recoverable");
    let intact = disks
        .iter()
        .zip(&encoded)
        .all(|(got, want)| got.as_ref().unwrap() == want);
    println!("lost data disk 1 + row parity simultaneously -> recovered bit-exact: {intact}");
    assert!(intact);

    // --- 3. The event the reliability model skips --------------------
    let collision = CollisionModel::paper_base_case();
    println!();
    println!(
        "P(two latent defects share one stripe), base case: {:.2e}",
        collision.analytic_collision_probability()
    );
    println!(
        "vs. the modeled defect+drive-failure path over one week: {:.0}x more likely",
        collision.modeled_to_unmodeled_ratio(8.0 * 168.0 / 461_386.0)
    );
    println!("-> the paper's choice to model defects per-drive (not per-stripe) is sound.");
}
