//! Vintage analysis: fit Weibulls to (synthetic) field data, test the
//! constant-failure-rate hypothesis, and quantify what getting the
//! shape wrong costs in predicted data loss.
//!
//! This is the reliability-engineer workflow behind the paper's
//! Figures 2 and 10: field data comes in as failure/suspension records,
//! gets fitted, and the fitted shape drives the RAID model.
//!
//! ```sh
//! cargo run --release -p raidsim --example vintage_analysis
//! ```

use raidsim::config::{params, RaidGroupConfig};
use raidsim::dists::fit::{bootstrap_ci, mle};
use raidsim::dists::rng::stream;
use raidsim::dists::Weibull3;
use raidsim::hdd::vintage::fig2_vintages;
use raidsim::run::Simulator;
use raidsim::workloads::vintage_gen::synthesize;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()?.get();
    println!("Fitting three production vintages from synthetic field studies");
    println!(
        "{:>12} {:>10} {:>10} {:>22} {:>14}",
        "vintage", "beta_hat", "eta_hat", "90% CI for beta", "HPP tenable?"
    );

    let mut fitted = Vec::new();
    for (i, v) in fig2_vintages().iter().enumerate() {
        let mut rng = stream(2024, i as u64);
        let data = synthesize(v, &mut rng);
        let fit = mle(&data)?;
        let (_eta_ci, beta_ci) = bootstrap_ci(&data, mle, 200, 0.90, 55 + i as u64)?;
        let hpp = if beta_ci.contains(1.0) { "yes" } else { "NO" };
        println!(
            "{:>12} {:>10.3} {:>10.0} {:>10.3}..{:>10.3} {:>14}",
            v.name, fit.beta, fit.eta, beta_ci.lower, beta_ci.upper, hpp
        );
        fitted.push(fit);
    }

    // What does the shape error cost? Re-run the RAID model with each
    // fitted TTOp and with the exponential the MTTDL method would use.
    println!();
    println!("Impact on 10-year data loss (1,000 groups, no latent defects):");
    println!(
        "{:>12} {:>18} {:>18}",
        "vintage", "Weibull fit", "exponential fit"
    );
    for (i, (v, fit)) in fig2_vintages().iter().zip(&fitted).enumerate() {
        let weibull = RaidGroupConfig {
            dists: raidsim::config::TransitionDistributions::weibull_both()?,
            ..RaidGroupConfig::paper_base_case()?
        }
        .with_ttop(Arc::new(Weibull3::two_param(fit.eta, fit.beta)?));
        // The exponential with the same *mean* lifetime.
        let mean = Weibull3::two_param(fit.eta, fit.beta)?;
        let exp_cfg = RaidGroupConfig {
            dists: raidsim::config::TransitionDistributions::weibull_both()?,
            ..RaidGroupConfig::paper_base_case()?
        }
        .with_ttop(Arc::new(raidsim::dists::Exponential::from_mean(
            raidsim::dists::LifeDistribution::mean(&mean),
        )?));

        let seed = 900 + i as u64;
        let w = Simulator::new(weibull).run_parallel(3_000, seed, threads);
        let e = Simulator::new(exp_cfg).run_parallel(3_000, seed + 1, threads);
        println!(
            "{:>12} {:>18.2} {:>18.2}",
            v.name,
            w.ddfs_per_thousand_groups(),
            e.ddfs_per_thousand_groups()
        );
    }

    println!();
    println!(
        "Vintages 2 and 3 exclude beta = 1 decisively: assuming a constant \
         failure rate for them misestimates the 10-year loss count \
         (paper Figure 10: beta = 0.8 gives ~83% more DDFs than beta = 1, \
         beta = 1.4 only ~30% as many, at a fixed characteristic life)."
    );
    let _ = params::MISSION_HOURS;
    Ok(())
}
