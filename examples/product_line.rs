//! Product-line review: sweep the drive catalog and rank configurations
//! by data-loss risk using the closed form, then confirm the winner by
//! simulation.
//!
//! This is the §8 "RAID architect" workflow end-to-end: physical specs
//! → restore floors → closed-form risk screening (microseconds per
//! candidate) → Monte Carlo confirmation of the shortlist.
//!
//! ```sh
//! cargo run --release -p raidsim --example product_line
//! ```

use raidsim::closed_form::{expected_ddfs_per_group, ClosedFormInputs};
use raidsim::config::{params, RaidGroupConfig};
use raidsim::hdd::catalog;
use raidsim::hdd::restore::{minimum_restore_hours, RestoreModel};
use raidsim::run::Simulator;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const GROUP: usize = 8;
    println!(
        "{:<16} {:>10} {:>14} {:>16} {:>20}",
        "model", "class", "min restore", "availability*", "closed-form DDFs"
    );
    println!("{:-<80}", "");

    let mut best: Option<(String, f64, RaidGroupConfig)> = None;
    for entry in catalog::all() {
        let ttop = entry.class.default_ttop()?;
        let restore_floor = minimum_restore_hours(&entry.spec, GROUP);
        let restore_model = RestoreModel {
            group_size: GROUP,
            ..RestoreModel::paper_base_case()
        };
        let ttr = restore_model.weibull_for(&entry.spec)?;

        // Closed-form screening.
        let inputs = ClosedFormInputs {
            drives: GROUP,
            mean_ttr: ttr.mean(),
            ..ClosedFormInputs::paper_base_case()
        };
        let ddfs_per_1000 =
            1_000.0 * expected_ddfs_per_group(&inputs, &ttop, params::MISSION_HOURS);

        // Steady-state drive availability from the failure/restore
        // means (for the table only).
        use raidsim::dists::LifeDistribution as _;
        let availability = ttop.mean() / (ttop.mean() + ttr.mean());

        println!(
            "{:<16} {:>10} {:>12.1} h {:>16.6} {:>20.1}",
            entry.spec.model(),
            match entry.class {
                catalog::DriveClass::Enterprise => "ent",
                catalog::DriveClass::Nearline => "near",
            },
            restore_floor,
            availability,
            ddfs_per_1000
        );

        let mut cfg = RaidGroupConfig::paper_base_case()?;
        cfg.dists.ttop = Arc::new(ttop);
        cfg.dists.ttr = Arc::new(ttr);
        match &best {
            Some((_, ddfs, _)) if *ddfs <= ddfs_per_1000 => {}
            _ => best = Some((entry.spec.model().to_string(), ddfs_per_1000, cfg)),
        }
    }

    let (model, screened, cfg) = best.expect("catalog is non-empty");
    println!();
    println!("Screening winner: {model} ({screened:.1} DDFs/1,000 groups by closed form)");

    // Confirm by simulation.
    let threads = std::thread::available_parallelism()?.get();
    let result = Simulator::new(cfg).run_parallel(3_000, 99, threads);
    println!(
        "Monte Carlo confirmation: {:.1} DDFs/1,000 groups ({} groups simulated)",
        result.ddfs_per_thousand_groups(),
        result.groups()
    );
    println!();
    println!(
        "*steady-state single-drive availability (MTTF / (MTTF + MTTR)); the \
         restore floor is what separates models sharing a failure class."
    );
    Ok(())
}
