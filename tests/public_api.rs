//! Exercises the public facade end-to-end: re-export paths, common
//! trait obligations (Send/Sync/Debug), serde round trips of the data
//! types a downstream tool would persist, and the object-safety the
//! configuration API depends on.

use raidsim::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim::dists::{CompetingRisks, Exponential, LifeDistribution, Mixture, Weibull3};
use raidsim::events::{DdfEvent, DdfKind, GroupHistory};
use raidsim::run::{SimulationResult, Simulator};
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_debug<T: std::fmt::Debug>() {}

#[test]
fn public_types_are_send_sync_debug() {
    assert_send_sync::<Weibull3>();
    assert_send_sync::<Exponential>();
    assert_send_sync::<Mixture>();
    assert_send_sync::<CompetingRisks>();
    assert_send_sync::<RaidGroupConfig>();
    assert_send_sync::<Simulator>();
    assert_send_sync::<SimulationResult>();
    assert_send_sync::<GroupHistory>();
    assert_send_sync::<raidsim::hdd::DriveSpec>();
    assert_send_sync::<raidsim::markov::Ctmc>();

    assert_debug::<Weibull3>();
    assert_debug::<RaidGroupConfig>();
    assert_debug::<SimulationResult>();
    assert_debug::<raidsim::analysis::McfEstimate>();
}

#[test]
fn life_distribution_is_object_safe_and_shareable() {
    let dists: Vec<Arc<dyn LifeDistribution>> = vec![
        Arc::new(Weibull3::new(6.0, 12.0, 2.0).unwrap()),
        Arc::new(Exponential::from_mean(100.0).unwrap()),
    ];
    for d in &dists {
        assert!(d.cdf(1e9) > 0.99);
        assert!(d.mean() > 0.0);
    }
    // Shareable across threads.
    let d = dists[0].clone();
    std::thread::spawn(move || d.cdf(10.0)).join().unwrap();
}

#[test]
fn facade_paths_resolve() {
    // Each re-exported module is reachable and functional.
    let _ = raidsim::params::MISSION_HOURS;
    let _ = raidsim::mttdl::equation3_example();
    let _ = raidsim::hdd::rer::table1();
    let _ = raidsim::hdd::vintage::fig2_vintages();
    let _ = raidsim::workloads::fieldgen::Fig1Population::all();
    let _ = raidsim::analysis::mcf::normal_quantile(0.5);
    let _ = raidsim::dists::special::gamma(2.0);
    let _ = raidsim::geometry::Raid5Layout::new(8).parity_drive(0);
    let _ = raidsim::geometry::RowDiagonalParity::new(5).data_disks();
    let _ = raidsim::geometry::collision::CollisionModel::paper_base_case()
        .analytic_collision_probability();
    let _ = raidsim::analysis::trend::CrowAmsaa::fit(&[10.0, 20.0], 2, 100.0);
    let _ = raidsim::dists::Lognormal::new(0.0, 1.0, 0.5).unwrap();
    let _: raidsim::CoreError = raidsim::dists::DistError::Empty.into();
}

#[test]
fn simulation_result_serde_round_trip() {
    // serde is wired through the result types so runs can be persisted;
    // check a manual Serialize -> Deserialize round trip through the
    // serde data model using a small JSON-ish writer is unnecessary —
    // use the derive through a string via serde's test-friendly
    // in-memory representation: the `Debug` formatting equality after a
    // clone stands in for structural equality here, and the serde
    // derives are checked by compiling this generic function.
    fn requires_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    requires_serde::<GroupHistory>();
    requires_serde::<DdfEvent>();
    requires_serde::<SimulationResult>();
    requires_serde::<raidsim::analysis::mcf::McfPoint>();
    requires_serde::<raidsim::hdd::DriveSpec>();

    let h = GroupHistory {
        ddfs: vec![DdfEvent {
            time: 1.0,
            kind: DdfKind::DoubleOperational,
        }],
        op_failures: 2,
        latent_defects: 3,
        scrubs_completed: 1,
        restores_completed: 2,
        downtime_hours: 12.5,
        log_weight: 0.0,
    };
    let clone = h.clone();
    assert_eq!(format!("{h:?}"), format!("{clone:?}"));
}

#[test]
fn end_to_end_via_facade_only() {
    // A downstream user's whole workflow through `raidsim::` paths.
    let cfg = RaidGroupConfig {
        drives: 6,
        redundancy: Redundancy::SingleParity,
        mission_hours: 30_000.0,
        dists: TransitionDistributions::paper_base_case().unwrap(),
        defect_reset_on_replacement: false,
        spares: raidsim::config::SparePolicy::AlwaysAvailable,
    };
    cfg.validate().unwrap();
    let result = Simulator::new(cfg).run(200, 8);
    assert_eq!(result.groups(), 200);
    let per_system: Vec<Vec<f64>> = result
        .histories
        .iter()
        .map(|h| h.ddfs.iter().map(|e| e.time).collect())
        .collect();
    let mcf = raidsim::analysis::McfEstimate::from_event_times(&per_system, 30_000.0, 0.9);
    assert!(mcf.final_value() >= 0.0);
    let pts = raidsim::analysis::rocof(&result.ddf_times(), 200, 30_000.0, 6);
    assert_eq!(pts.len(), 6);
}

#[test]
fn error_types_implement_std_error() {
    fn is_error<E: std::error::Error + Send + Sync + 'static>() {}
    is_error::<raidsim::CoreError>();
    is_error::<raidsim::dists::DistError>();
    is_error::<raidsim::hdd::HddError>();
}

#[test]
fn config_is_cloneable_and_reusable() {
    let cfg = RaidGroupConfig::paper_base_case().unwrap();
    let sim1 = Simulator::new(cfg.clone());
    let sim2 = Simulator::new(cfg);
    assert_eq!(sim1.run(30, 1), sim2.run(30, 1));
}
