//! Cross-validation of the three model families.
//!
//! In the constant-rate limit, the Monte Carlo engines, the CTMC
//! transient solver and the MTTDL closed forms describe the same
//! process and must agree. Outside that limit the Monte Carlo is the
//! reference and the closed forms are the strawmen the paper knocks
//! down — these tests pin both behaviours.

use raidsim::config::{RaidGroupConfig, TransitionDistributions};
use raidsim::dists::Exponential;
use raidsim::markov::{latent_defect_chain, ld_states, mttdl_chain, mttdl_states};
use raidsim::mttdl::{expected_ddfs, mttdl_full};
use raidsim::run::Simulator;
use std::sync::Arc;

const LAMBDA: f64 = 1.0 / 461_386.0;
const MU: f64 = 1.0 / 12.0;
const MISSION: f64 = 87_600.0;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Monte Carlo with constant rates ≈ MTTDL ≈ Markov (the paper's own
/// validation: "the model result c-c follows the MTTDL line closely").
#[test]
fn constant_rate_limit_agrees_across_all_three_models() {
    // MTTDL (equation 1).
    let per_group_mttdl = expected_ddfs(mttdl_full(7, LAMBDA, MU), 1.0, MISSION);

    // Markov.
    let chain = mttdl_chain(7, LAMBDA, MU);
    let per_group_markov =
        chain.expected_entries(&[1.0, 0.0, 0.0], &[mttdl_states::DDF], MISSION, 0.5);

    // Monte Carlo.
    let cfg = RaidGroupConfig {
        dists: TransitionDistributions::constant_rates().unwrap(),
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    let groups = 120_000;
    let r = Simulator::new(cfg).run_parallel(groups, 1234, threads());
    let per_group_mc = r.total_ddfs() as f64 / groups as f64;

    // Closed forms agree tightly.
    let rel = (per_group_markov - per_group_mttdl).abs() / per_group_mttdl;
    assert!(
        rel < 0.01,
        "markov {per_group_markov} vs mttdl {per_group_mttdl}"
    );

    // Monte Carlo agrees within sampling noise (expected count ≈ 33,
    // Poisson sigma ≈ 5.7; allow 4 sigma).
    let expected_count = per_group_mttdl * groups as f64;
    let got = r.total_ddfs() as f64;
    assert!(
        (got - expected_count).abs() < 4.0 * expected_count.sqrt() + 2.0,
        "mc count {got}, closed-form {expected_count}"
    );
    let _ = per_group_mc;
}

/// The 5-state constant-rate latent chain agrees with the Monte Carlo
/// run on exponential versions of all four distributions.
#[test]
fn latent_defect_chain_matches_monte_carlo_in_exponential_limit() {
    let lambda_ld = 1.08e-4;
    let mean_scrub = 156.0; // matches Weibull(6, 168, 3) mean
    let chain = latent_defect_chain(7, LAMBDA, MU, lambda_ld, 1.0 / mean_scrub);
    let per_group_markov = chain.expected_entries(
        &[1.0, 0.0, 0.0, 0.0, 0.0],
        &[ld_states::DDF_FROM_LATENT, ld_states::DDF_FROM_OP],
        MISSION,
        0.5,
    );

    let cfg = RaidGroupConfig {
        dists: TransitionDistributions {
            ttop: Arc::new(Exponential::new(LAMBDA).unwrap()),
            ttr: Arc::new(Exponential::new(MU).unwrap()),
            ttld: Some(Arc::new(Exponential::new(lambda_ld).unwrap())),
            ttscrub: Some(Arc::new(Exponential::from_mean(mean_scrub).unwrap())),
        },
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    let groups = 4_000;
    let r = Simulator::new(cfg).run_parallel(groups, 77, threads());
    let per_group_mc = r.total_ddfs() as f64 / groups as f64;

    // The chain tracks at most one defective drive; the MC tracks all
    // eight, so the chain runs a few percent low. Require agreement
    // within 20%.
    let rel = (per_group_mc - per_group_markov).abs() / per_group_markov;
    assert!(
        rel < 0.20,
        "mc {per_group_mc} vs markov {per_group_markov}, rel {rel}"
    );
}

/// With the paper's (non-exponential) distributions, the Monte Carlo
/// departs from MTTDL by orders of magnitude — the headline claim.
#[test]
fn paper_distributions_blow_past_mttdl() {
    let cfg = RaidGroupConfig::paper_base_case().unwrap();
    let groups = 2_000;
    let r = Simulator::new(cfg).run_parallel(groups, 9, threads());
    let per_1000 = r.ddfs_per_thousand_groups();
    let mttdl_per_1000 = expected_ddfs(mttdl_full(7, LAMBDA, MU), 1_000.0, MISSION);
    assert!(
        per_1000 > 100.0 * mttdl_per_1000,
        "model {per_1000}, mttdl {mttdl_per_1000}"
    );
}

/// Every history from a large mixed batch satisfies the engine
/// invariants (failure injection: aggressive rates to exercise edge
/// paths).
#[test]
fn histories_satisfy_invariants_under_stress() {
    use raidsim::dists::Weibull3;
    let cfg = RaidGroupConfig {
        drives: 4,
        mission_hours: 20_000.0,
        dists: TransitionDistributions {
            ttop: Arc::new(Weibull3::two_param(2_000.0, 0.7).unwrap()),
            ttr: Arc::new(Weibull3::new(12.0, 72.0, 2.0).unwrap()),
            ttld: Some(Arc::new(Weibull3::two_param(500.0, 1.0).unwrap())),
            ttscrub: Some(Arc::new(Weibull3::new(1.0, 24.0, 3.0).unwrap())),
        },
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    let r = Simulator::new(cfg.clone()).run(500, 31);
    let mut saw_ddf = false;
    for h in &r.histories {
        h.assert_invariants(cfg.mission_hours);
        saw_ddf |= h.ddf_count() > 0;
    }
    assert!(saw_ddf, "stress config must produce DDFs");
}

/// The latent pathway dominates the loss modes under the base case —
/// "the latent defect occurrence rate… may be 100 times greater than
/// the operational failure rate".
#[test]
fn latent_pathway_dominates_base_case() {
    let cfg = RaidGroupConfig::paper_base_case().unwrap();
    let r = Simulator::new(cfg).run_parallel(2_000, 5, threads());
    let (op_op, latent_op) = r.kind_counts();
    assert!(
        latent_op > 20 * op_op.max(1),
        "op+op {op_op}, ld+op {latent_op}"
    );
}
