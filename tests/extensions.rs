//! Facade-level integration tests for the extension systems
//! (DESIGN.md S10–S15): each is exercised end-to-end through
//! `raidsim::` paths the way a downstream user would.

use raidsim::closed_form::{expected_ddfs_per_group, ClosedFormInputs};
use raidsim::config::{RaidGroupConfig, SparePolicy};
use raidsim::dists::empirical::Observation;
use raidsim::dists::fit::{mle3, weibayes};
use raidsim::dists::rng::stream;
use raidsim::dists::{Degenerate, LifeDistribution, Lognormal, Weibull3};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::{sweep, Simulator};
use raidsim::workloads::study_power::{achievable_precision, design_study};

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// S14: the closed form and the simulation answer the same design
/// question, through public paths only.
#[test]
fn closed_form_tracks_simulation_via_facade() {
    let ttop = Weibull3::two_param(461_386.0, 1.12).unwrap();
    let analytic =
        1_000.0 * expected_ddfs_per_group(&ClosedFormInputs::paper_base_case(), &ttop, 87_600.0);
    let mc = Simulator::new(RaidGroupConfig::paper_base_case().unwrap())
        .run_parallel(3_000, 8, threads())
        .ddfs_per_thousand_groups();
    assert!(
        (analytic - mc).abs() / mc < 0.25,
        "analytic {analytic}, mc {mc}"
    );
}

/// The sweep helper orders scrub policies correctly under common
/// random numbers.
#[test]
fn sweep_orders_scrub_policies() {
    let mk = |eta: f64| {
        RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))
            .unwrap()
    };
    let results = sweep(
        vec![
            ("12".into(), mk(12.0)),
            ("168".into(), mk(168.0)),
            ("336".into(), mk(336.0)),
        ],
        1_500,
        5,
        threads(),
    );
    let ddfs: Vec<usize> = results.iter().map(|(_, r)| r.total_ddfs()).collect();
    assert!(ddfs[0] < ddfs[1] && ddfs[1] < ddfs[2], "{ddfs:?}");
}

/// S13: finite spares never *reduce* loss, and availability is
/// reported.
#[test]
fn spares_and_availability() {
    let generous = RaidGroupConfig::paper_base_case().unwrap();
    let starved = RaidGroupConfig {
        spares: SparePolicy::Finite {
            pool: 1,
            replenish_hours: 2_000.0,
        },
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    let a = Simulator::new(generous).run_parallel(2_000, 3, threads());
    let b = Simulator::new(starved).run_parallel(2_000, 3, threads());
    // Same streams: starved spares can only delay restorations.
    let down_a: f64 = a.histories.iter().map(|h| h.downtime_hours).sum();
    let down_b: f64 = b.histories.iter().map(|h| h.downtime_hours).sum();
    assert!(down_b >= down_a, "starved pool must not reduce downtime");
    assert!(b.mean_availability(8) <= a.mean_availability(8));
    assert!(a.mean_availability(8) > 0.999);
}

/// S15: the degenerate distribution drives a fully deterministic
/// simulation through the facade.
#[test]
fn degenerate_distributions_script_the_engine() {
    let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
    cfg.dists.ttop = std::sync::Arc::new(Degenerate::new(50_000.0).unwrap());
    cfg.dists.ttr = std::sync::Arc::new(Degenerate::new(10.0).unwrap());
    cfg.dists.ttld = None;
    cfg.dists.ttscrub = None;
    let r = Simulator::new(cfg).run(3, 1);
    // Every group identical: one simultaneous-failure DDF at 50,000 h
    // (slot 0's failure finds a healthy group; slot 1's finds slot 0
    // down).
    for h in &r.histories {
        assert_eq!(h.ddf_count(), 1);
        assert_eq!(h.ddfs[0].time, 50_000.0);
    }
}

/// S2 extensions: three-parameter and Weibayes fits through the
/// facade.
#[test]
fn advanced_fitting_via_facade() {
    let truth = Weibull3::new(6.0, 12.0, 2.0).unwrap();
    let mut rng = stream(77, 0);
    let data: Vec<Observation> = (0..3_000)
        .map(|_| Observation::failure(truth.sample(&mut rng)))
        .collect();
    let fit3 = mle3(&data).unwrap();
    assert!((fit3.gamma - 6.0).abs() < 0.6, "gamma = {}", fit3.gamma);

    // Weibayes with the known shape recovers eta from the same data.
    let shifted: Vec<Observation> = data
        .iter()
        .map(|o| Observation {
            time: (o.time - 6.0).max(1e-6),
            failed: o.failed,
        })
        .collect();
    let eta = weibayes(&shifted, 2.0).unwrap();
    assert!((eta - 12.0).abs() < 0.5, "eta = {eta}");
}

/// S7 extension: study power analysis sizes the paper's Figure 2
/// studies correctly.
#[test]
fn study_power_via_facade() {
    assert!(achievable_precision(992, 0.90) < 0.10);
    let v3 = Weibull3::two_param(75_012.0, 1.4873).unwrap();
    let plan = design_study(&v3, 6_000.0, 0.10, 0.90).unwrap();
    assert!(plan.drives_needed > 1_000);
    assert!(plan.expected_failure_fraction > 0.01);
}

/// S13: lognormal restore slots into the model without disturbance.
#[test]
fn lognormal_restore_via_facade() {
    let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
    cfg.dists.ttr = std::sync::Arc::new(Lognormal::from_mean_cv(6.0, 10.6, 0.5).unwrap());
    let r = Simulator::new(cfg).run_parallel(1_500, 9, threads());
    let base = Simulator::new(RaidGroupConfig::paper_base_case().unwrap()).run_parallel(
        1_500,
        9,
        threads(),
    );
    // Mean-matched restore: DDF counts agree within noise.
    let (a, b) = (r.total_ddfs() as f64, base.total_ddfs() as f64);
    assert!(
        (a - b).abs() <= 4.0 * (a + b).sqrt() + 5.0,
        "ln = {a}, weibull = {b}"
    );
}

/// CSV export and the drive catalog through the facade.
#[test]
fn csv_and_catalog_via_facade() {
    use raidsim::hdd::catalog;
    let sata = catalog::find("500GB-SATA").expect("cataloged");
    let mut cfg = RaidGroupConfig::paper_base_case().unwrap();
    cfg.dists.ttop = std::sync::Arc::new(sata.class.default_ttop().unwrap());
    let r = Simulator::new(cfg).run(40, 2);
    let mut csv = Vec::new();
    r.write_history_csv(&mut csv).unwrap();
    let text = String::from_utf8(csv).unwrap();
    assert_eq!(text.lines().count(), 41);
    let mut ddf_csv = Vec::new();
    r.write_ddf_csv(&mut ddf_csv).unwrap();
    assert_eq!(
        String::from_utf8(ddf_csv).unwrap().lines().count(),
        1 + r.total_ddfs()
    );
}

/// Mixture EM through the facade diagnoses the Figure 1 populations.
#[test]
fn mixture_em_via_facade() {
    use raidsim::dists::fit::{mixture_em, single_weibull_log_likelihood};
    use raidsim::workloads::fieldgen::Fig1Population;
    let mut rng = stream(12, 0);
    let pure: Vec<f64> = (0..3_000)
        .map(|_| Fig1Population::Hdd1.distribution().sample(&mut rng))
        .collect();
    let mixed: Vec<f64> = (0..3_000)
        .map(|_| Fig1Population::Hdd3.distribution().sample(&mut rng))
        .collect();
    let gain = |ts: &[f64]| {
        mixture_em(ts).unwrap().log_likelihood - single_weibull_log_likelihood(ts).unwrap()
    };
    assert!(gain(&mixed) > 10.0 * gain(&pure).max(1.0));
}

/// S10: the geometry substrate answers the stripe-collision question
/// consistently between its analytic and Monte Carlo estimators.
#[test]
fn stripe_collision_via_facade() {
    use raidsim::geometry::collision::CollisionModel;
    let m = CollisionModel {
        drives: 8,
        stripes: 20_000,
        defects_per_drive: 2.0,
    };
    let analytic = m.analytic_collision_probability();
    let mc = m.simulate_collision_probability(50_000, &mut stream(4, 0));
    assert!(
        (analytic - mc).abs() / analytic < 0.3,
        "a = {analytic}, mc = {mc}"
    );
}
