//! The two simulation engines implement the same semantics with
//! different structures (event loop vs pre-generated timelines + sweep).
//! Their estimates must agree statistically on every experiment
//! configuration — this is the strongest internal check the
//! reproduction has, since the paper's own implementation is not
//! available.

use raidsim::config::{RaidGroupConfig, Redundancy, TransitionDistributions};
use raidsim::engine::{DesEngine, TimelineEngine};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::run::Simulator;
use std::sync::Arc;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs both engines on the same config (different, independent seeds)
/// and asserts the DDF counts agree within combined sampling noise.
fn assert_engines_agree(cfg: RaidGroupConfig, groups: usize, label: &str) {
    let des = Simulator::new(cfg.clone()).run_parallel(groups, 1000, threads());
    let timeline = Simulator::new(cfg)
        .with_engine(Arc::new(TimelineEngine::new()))
        .run_parallel(groups, 2000, threads());
    let a = des.total_ddfs() as f64;
    let b = timeline.total_ddfs() as f64;
    // Counts are near-Poisson; allow 4 x combined sigma plus slack for
    // very small counts.
    let sigma = (a + b).sqrt();
    assert!(
        (a - b).abs() <= 4.0 * sigma + 8.0,
        "{label}: des = {a}, timeline = {b}"
    );
    // Secondary statistics agree within the same near-Poisson noise
    // model as the primary DDF check.
    let ops_a = des.total_op_failures() as f64;
    let ops_b = timeline.total_op_failures() as f64;
    let ops_sigma = (ops_a + ops_b).sqrt();
    assert!(
        (ops_a - ops_b).abs() <= 4.0 * ops_sigma + 8.0,
        "{label}: op failure counts diverge (des = {ops_a}, timeline = {ops_b})"
    );
}

#[test]
fn agree_on_base_case() {
    assert_engines_agree(
        RaidGroupConfig::paper_base_case().unwrap(),
        3_000,
        "base case",
    );
}

#[test]
fn agree_without_latent_defects() {
    let cfg = RaidGroupConfig {
        dists: TransitionDistributions::weibull_both().unwrap(),
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    assert_engines_agree(cfg, 3_000, "no latent defects");
}

#[test]
fn agree_with_constant_rates() {
    let cfg = RaidGroupConfig {
        dists: TransitionDistributions::constant_rates().unwrap(),
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    assert_engines_agree(cfg, 3_000, "constant rates");
}

#[test]
fn agree_without_scrub() {
    let cfg = RaidGroupConfig::paper_base_case()
        .unwrap()
        .with_scrub_policy(ScrubPolicy::Disabled)
        .unwrap();
    assert_engines_agree(cfg, 1_000, "no scrub");
}

#[test]
fn agree_with_fast_scrub() {
    let cfg = RaidGroupConfig::paper_base_case()
        .unwrap()
        .with_scrub_policy(ScrubPolicy::with_characteristic_hours(12.0))
        .unwrap();
    assert_engines_agree(cfg, 4_000, "12 h scrub");
}

#[test]
fn agree_under_double_parity() {
    let cfg = RaidGroupConfig {
        redundancy: Redundancy::DoubleParity,
        ..RaidGroupConfig::paper_base_case().unwrap()
    }
    .with_scrub_policy(ScrubPolicy::Disabled)
    .unwrap();
    assert_engines_agree(cfg, 1_000, "raid6 no scrub");
}

/// The defect-reset refinement (physically faithful mode, DES only)
/// changes the answer by at most a few percent on the base case — the
/// quantified justification for the paper's independence assumption.
#[test]
fn defect_reset_ablation_is_small() {
    let faithful = RaidGroupConfig::paper_base_case().unwrap();
    let reset = RaidGroupConfig {
        defect_reset_on_replacement: true,
        ..RaidGroupConfig::paper_base_case().unwrap()
    };
    let groups = 6_000;
    let a = Simulator::new(faithful)
        .run_parallel(groups, 42, threads())
        .total_ddfs() as f64;
    let b = Simulator::new(reset)
        .run_parallel(groups, 42, threads())
        .total_ddfs() as f64;
    // Same seed, so most randomness is shared; the modes differ only
    // on the rare defect-pending-at-replacement paths.
    let rel = (a - b).abs() / a.max(1.0);
    assert!(rel < 0.15, "faithful = {a}, reset = {b}, rel = {rel}");
}

/// Determinism across engines: each engine is exactly reproducible for
/// a fixed seed (engine-to-engine traces differ — only statistics
/// match).
#[test]
fn each_engine_is_individually_deterministic() {
    let cfg = RaidGroupConfig::paper_base_case().unwrap();
    let a = Simulator::new(cfg.clone()).run(100, 5);
    let b = Simulator::new(cfg.clone()).run_parallel(100, 5, 4);
    assert_eq!(a, b);

    let t1 = Simulator::new(cfg.clone())
        .with_engine(Arc::new(TimelineEngine::new()))
        .run(100, 5);
    let t2 = Simulator::new(cfg)
        .with_engine(Arc::new(TimelineEngine::new()))
        .run_parallel(100, 5, 3);
    assert_eq!(t1, t2);
    let _ = DesEngine::new();
}
