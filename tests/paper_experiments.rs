//! Scaled-down versions of every paper experiment, asserting the
//! *shape* claims the full bench binaries reproduce quantitatively
//! (EXPERIMENTS.md records the full-scale numbers).

use raidsim::analysis::mcf::McfEstimate;
use raidsim::analysis::rocof::{rocof, rocof_trend};
use raidsim::config::{params, RaidGroupConfig, TransitionDistributions};
use raidsim::dists::fit::{mle, rank_regression};
use raidsim::dists::rng::stream;
use raidsim::dists::Weibull3;
use raidsim::hdd::rer::{latent_defect_rate, table1, ReadErrorRate, ReadIntensity};
use raidsim::hdd::scrub::ScrubPolicy;
use raidsim::mttdl;
use raidsim::run::Simulator;
use raidsim::workloads::fieldgen::{generate, Fig1Population, StudyDesign};
use raidsim::workloads::vintage_gen::synthesize;
use std::sync::Arc;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// E1 / Figure 1 — only the pure-Weibull population fits a straight
/// line; the composite populations fit visibly worse.
#[test]
fn fig1_straightness_discriminates_populations() {
    let design = StudyDesign {
        population: 8_000,
        window_hours: 30_000.0,
        staggered_entry: 0.0,
    };
    let mut r2 = Vec::new();
    for (i, pop) in Fig1Population::all().iter().enumerate() {
        let mut rng = stream(100, i as u64);
        let data = generate(pop.distribution().as_ref(), design, &mut rng);
        let fit = rank_regression(&data).unwrap();
        r2.push((pop.label(), fit.r_squared.unwrap()));
    }
    // HDD #1 fits best.
    assert!(r2[0].1 > 0.99, "{r2:?}");
    assert!(r2[0].1 > r2[1].1 && r2[0].1 > r2[2].1, "{r2:?}");
}

/// E2 / Figure 2 — synthetic vintage studies recover the published
/// shape ordering beta1 < beta2 < beta3.
#[test]
fn fig2_vintage_shapes_are_recovered_in_order() {
    let mut betas = Vec::new();
    for (i, v) in raidsim::hdd::vintage::fig2_vintages().iter().enumerate() {
        let mut rng = stream(200, i as u64);
        let fit = mle(&synthesize(v, &mut rng)).unwrap();
        betas.push(fit.beta);
    }
    assert!(
        betas[0] < betas[1] && betas[1] < betas[2],
        "betas = {betas:?}"
    );
    assert!((betas[0] - 1.0987).abs() < 0.25);
    assert!((betas[2] - 1.4873).abs() < 0.25);
}

/// E3 / Table 1 — the published grid values.
#[test]
fn table1_grid_matches_paper() {
    let t = table1();
    let get = |rer: &str, rate: &str| {
        t.iter()
            .find(|c| c.rer_label == rer && c.intensity_label == rate)
            .unwrap()
            .errors_per_hour
    };
    assert!((get("Low", "Low") - 1.08e-5).abs() < 1e-11);
    assert!((get("Low", "High") - 1.08e-4).abs() < 1e-10);
    assert!((get("Med", "Low") - 1.08e-4).abs() < 1e-10);
    assert!((get("Med", "High") - 1.08e-3).abs() < 1e-9);
    assert!((get("High", "Low") - 4.32e-4).abs() < 1e-10);
    assert!((get("High", "High") - 4.32e-3).abs() < 1e-9);
}

/// E4 / Equation 3 — MTTDL = 36,162 years; 0.28 expected DDFs.
#[test]
fn eq3_worked_example() {
    let ex = mttdl::equation3_example();
    assert!((ex.mttdl_years - 36_162.0).abs() < 25.0);
    assert!((ex.expected_ddfs - 0.2770).abs() < 0.002);
}

/// E5 / Figure 6 — variant ordering at the 10-year mark: the c-c
/// variant tracks MTTDL; the time-dependent variants differ by around
/// 2x, not orders of magnitude ("The difference between the MTTDL and
/// the model are on the order of 2 to 1").
#[test]
fn fig6_variants_bracket_mttdl() {
    let mttdl_10yr = mttdl::expected_ddfs(
        mttdl::mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA),
        1_000.0,
        params::MISSION_HOURS,
    );
    let groups = 60_000;
    let run = |dists: TransitionDistributions, seed: u64| {
        let cfg = RaidGroupConfig {
            dists,
            ..RaidGroupConfig::paper_base_case().unwrap()
        };
        Simulator::new(cfg)
            .run_parallel(groups, seed, threads())
            .ddfs_per_thousand_groups()
    };
    let cc = run(TransitionDistributions::constant_rates().unwrap(), 1);
    let ft_rt = run(TransitionDistributions::weibull_both().unwrap(), 2);
    // c-c within ~50% of MTTDL (sampling noise at these counts).
    assert!(
        (cc - mttdl_10yr).abs() < 0.5 * mttdl_10yr + 0.1,
        "cc = {cc}, mttdl = {mttdl_10yr}"
    );
    // f(t)-r(t) within a factor of 4 of MTTDL, not orders of magnitude.
    assert!(
        ft_rt < 4.0 * mttdl_10yr && ft_rt > mttdl_10yr / 4.0,
        "ft_rt = {ft_rt}, mttdl = {mttdl_10yr}"
    );
}

/// E6 / Figure 7 — no-scrub ≫ 168 h scrub, and both curves are convex
/// (the MCF grows faster later).
#[test]
fn fig7_scrub_vs_no_scrub() {
    let groups = 1_500;
    let base = Simulator::new(RaidGroupConfig::paper_base_case().unwrap()).run_parallel(
        groups,
        3,
        threads(),
    );
    let noscrub = Simulator::new(
        RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::Disabled)
            .unwrap(),
    )
    .run_parallel(groups, 4, threads());

    assert!(
        noscrub.total_ddfs() > 4 * base.total_ddfs().max(1),
        "noscrub = {}, base = {}",
        noscrub.total_ddfs(),
        base.total_ddfs()
    );
    // "over 1,200 DDFs" per 1000 groups without scrubbing.
    let per_1000 = noscrub.ddfs_per_thousand_groups();
    assert!(per_1000 > 900.0, "no-scrub per-1000 = {per_1000}");

    // Convexity: second-half DDFs > first-half DDFs.
    let half = params::MISSION_HOURS / 2.0;
    let first = noscrub.ddfs_by(half);
    let second = noscrub.total_ddfs() - first;
    assert!(second > first, "first = {first}, second = {second}");
}

/// E7 / Figure 8 — the ROCOF is increasing for both Figure 7 curves.
#[test]
fn fig8_rocof_is_increasing() {
    let groups = 2_000;
    for (seed, cfg) in [
        (5, RaidGroupConfig::paper_base_case().unwrap()),
        (
            6,
            RaidGroupConfig::paper_base_case()
                .unwrap()
                .with_scrub_policy(ScrubPolicy::Disabled)
                .unwrap(),
        ),
    ] {
        let r = Simulator::new(cfg).run_parallel(groups, seed, threads());
        let pts = rocof(&r.ddf_times(), groups, params::MISSION_HOURS, 8);
        let trend = rocof_trend(&pts);
        assert!(trend > 0.0, "seed {seed}: trend = {trend}");
        assert!(
            pts.last().unwrap().rate > pts[0].rate,
            "seed {seed}: not increasing"
        );
    }
}

/// E8 / Figure 9 — longer scrub characteristic time means more DDFs,
/// monotonically across the sweep.
#[test]
fn fig9_scrub_sweep_is_monotone() {
    let groups = 2_500;
    let mut last = -1.0;
    for (i, eta) in [12.0, 48.0, 168.0, 336.0].into_iter().enumerate() {
        let cfg = RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::with_characteristic_hours(eta))
            .unwrap();
        let v = Simulator::new(cfg)
            .run_parallel(groups, 50 + i as u64, threads())
            .ddfs_per_thousand_groups();
        assert!(v > last, "eta = {eta}: {v} not > {last}");
        last = v;
    }
}

/// E9 / Figure 10 — at fixed characteristic life, smaller beta means
/// more early DDFs: strict ordering beta 0.8 > 1.0 > 1.4 over the
/// mission (no latent defects, matching the figure).
#[test]
fn fig10_shape_sweep_ordering() {
    let groups = 60_000;
    let mut results = Vec::new();
    for (i, beta) in [0.8, 1.0, 1.4].into_iter().enumerate() {
        let cfg = RaidGroupConfig {
            dists: TransitionDistributions::weibull_both().unwrap(),
            ..RaidGroupConfig::paper_base_case().unwrap()
        }
        .with_ttop(Arc::new(
            Weibull3::two_param(params::TTOP_ETA, beta).unwrap(),
        ));
        let r = Simulator::new(cfg).run_parallel(groups, 70 + i as u64, threads());
        results.push((beta, r.ddfs_per_thousand_groups()));
    }
    assert!(
        results[0].1 > results[1].1 && results[1].1 > results[2].1,
        "{results:?}"
    );
}

/// E10 / Table 3 — first-year ratios: no scrub > 1,000x MTTDL; 168 h
/// scrub > 100x.
#[test]
fn table3_first_year_ratios() {
    let year = 8_760.0;
    let mttdl_year = mttdl::expected_ddfs(
        mttdl::mttdl_full(7, 1.0 / params::TTOP_ETA, 1.0 / params::TTR_ETA),
        1_000.0,
        year,
    );
    let groups = 3_000;

    let noscrub = Simulator::new(
        RaidGroupConfig::paper_base_case()
            .unwrap()
            .with_scrub_policy(ScrubPolicy::Disabled)
            .unwrap(),
    )
    .run_parallel(groups, 11, threads())
    .per_thousand_by(year);
    assert!(
        noscrub / mttdl_year > 1_000.0,
        "no-scrub ratio = {}",
        noscrub / mttdl_year
    );

    let scrubbed = Simulator::new(RaidGroupConfig::paper_base_case().unwrap())
        .run_parallel(groups, 12, threads())
        .per_thousand_by(year);
    assert!(
        scrubbed / mttdl_year > 100.0,
        "168 h ratio = {}",
        scrubbed / mttdl_year
    );
    // And the ordering holds.
    assert!(noscrub > scrubbed);
}

/// The latent-defect rate grid spans the "may be 100 times greater than
/// the operational failure rate" claim.
#[test]
fn latent_rate_versus_operational_rate_claim() {
    let op_rate = 1.0 / params::TTOP_ETA;
    let max_ratio = latent_defect_rate(ReadErrorRate::HIGH, ReadIntensity::HIGH) / op_rate;
    assert!(max_ratio > 1_000.0);
    let base_ratio = latent_defect_rate(ReadErrorRate::MEDIUM, ReadIntensity::LOW) / op_rate;
    assert!(base_ratio > 40.0 && base_ratio < 60.0);
}

/// MCF machinery: the base-case MCF is monotone and its final value
/// matches the direct count.
#[test]
fn mcf_of_simulation_matches_counts() {
    let groups = 800;
    let r = Simulator::new(RaidGroupConfig::paper_base_case().unwrap()).run_parallel(
        groups,
        21,
        threads(),
    );
    let per_system: Vec<Vec<f64>> = r
        .histories
        .iter()
        .map(|h| h.ddfs.iter().map(|e| e.time).collect())
        .collect();
    let mcf = McfEstimate::from_event_times(&per_system, params::MISSION_HOURS, 0.95);
    assert!((1_000.0 * mcf.final_value() - r.ddfs_per_thousand_groups()).abs() < 1e-9);
}
